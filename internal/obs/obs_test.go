package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/fault"
	"gpm/internal/modes"
	"gpm/internal/solver"
)

// fakeSub is a deterministic synthetic substrate (physics match the §5.5
// predictor exactly), so obs tests exercise record/replay without trace
// characterization or cycle-level simulation underneath.
type fakeSub struct {
	plan       modes.Plan
	baseP      []float64
	rate       []float64
	exploreSec float64
}

func newFakeSub(plan modes.Plan, baseP, rate []float64, exploreSec float64) *fakeSub {
	return &fakeSub{plan: plan, baseP: baseP, rate: rate, exploreSec: exploreSec}
}

func (s *fakeSub) NumCores() int { return len(s.baseP) }

func (s *fakeSub) Bootstrap() []core.Sample {
	out := make([]core.Sample, len(s.baseP))
	for c := range out {
		out[c] = core.Sample{PowerW: s.baseP[c], Instr: s.rate[c] * s.exploreSec}
	}
	return out
}

func (s *fakeSub) ModePowerW(c int, m modes.Mode) float64 {
	return s.baseP[c] * s.plan.PowerScale(m)
}

func (s *fakeSub) DeltaStep(v modes.Vector, execSec float64, live []bool, energyJ, instr []float64) {
	for c := range live {
		if !live[c] {
			continue
		}
		energyJ[c] = s.baseP[c] * s.plan.PowerScale(v[c]) * execSec
		instr[c] = s.rate[c] * s.plan.FreqScale(v[c]) * execSec
	}
}

func (s *fakeSub) Finished(c int) bool { return false }

func (s *fakeSub) Lookahead() func(c int, m modes.Mode) (float64, float64) { return nil }

func (s *fakeSub) MemBound() []float64 { return nil }

func testPlan(t testing.TB) modes.Plan {
	t.Helper()
	cfg := config.Default(4)
	return modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
}

// testOptions builds a guarded, fault-injected 4-core run — every record
// field (true vs observed samples, stage overrides, guard state) gets
// exercised.
func testOptions(t testing.TB, plan modes.Plan, budgetW float64) engine.Options {
	t.Helper()
	inj, err := fault.NewInjector(fault.Scenario{Seed: 11, PowerNoiseSigma: 0.10, DropProb: 0.05}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	return engine.Options{
		Plan:             plan,
		Budget:           func(time.Duration) float64 { return budgetW },
		Decider:          engine.NewDecider(plan, core.MaxBIPS{}, pred, 4, &core.GuardConfig{}),
		DeltaSim:         50 * time.Microsecond,
		DeltasPerExplore: 10,
		Horizon:          3 * time.Millisecond,
		Injector:         inj,
	}
}

func testManifest() *Manifest {
	return &Manifest{
		Tool:             "obs_test",
		Substrate:        "fake",
		Policy:           "MaxBIPS",
		Cores:            4,
		DeltaSimNs:       50_000,
		DeltasPerExplore: 10,
		ExploreNs:        500_000,
		HorizonNs:        3_000_000,
		FaultSpec:        "seed=11,noise=0.10,drop=0.05",
		Guarded:          true,
	}
}

func runTraced(t *testing.T, o engine.Observer) *engine.Result {
	t.Helper()
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 16, 14}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6)
	opt := testOptions(t, plan, 45)
	opt.Observer = o
	res, err := engine.Run(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWriterCollectorAgree runs the same configuration through the streaming
// JSONL Writer and the in-memory Collector: the parsed stream must carry the
// same deterministic content (trace fingerprints equal, Diff nil, footers
// identical) and the footer's self-declared fingerprints must match what a
// reader recomputes.
func TestWriterCollectorAgree(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	resW := runTraced(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	col := NewCollector(testManifest())
	resC := runTraced(t, col)

	if fw, fc := ResultFingerprint(resW), ResultFingerprint(resC); fw != fc {
		t.Fatalf("observer changed the run: writer-run fingerprint %#x, collector-run %#x", fw, fc)
	}

	parsed, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Manifest == nil || parsed.Manifest.Schema != SchemaVersion {
		t.Fatalf("manifest missing or unversioned: %+v", parsed.Manifest)
	}
	if len(parsed.Records) != resW.Obs.Decisions {
		t.Fatalf("parsed %d records, engine made %d decisions", len(parsed.Records), resW.Obs.Decisions)
	}
	if d := Diff(parsed, col.Trace()); d != nil {
		t.Fatalf("writer and collector traces diverge: %v", d)
	}
	if a, b := TraceFingerprint(parsed), TraceFingerprint(col.Trace()); a != b {
		t.Fatalf("trace fingerprints differ: %#x vs %#x", a, b)
	}
	// Footer self-consistency: the streamed fingerprints must match a
	// reader's recomputation.
	f := parsed.Footer
	if f == nil {
		t.Fatal("no footer")
	}
	if want := strings.ToLower(f.TraceFingerprint); want != hex16(TraceFingerprint(parsed)) {
		t.Errorf("footer trace_fingerprint %s, recomputed %s", want, hex16(TraceFingerprint(parsed)))
	}
	if want := strings.ToLower(f.Fingerprint); want != hex16(ResultFingerprint(resW)) {
		t.Errorf("footer fingerprint %s, recomputed %s", want, hex16(ResultFingerprint(resW)))
	}
	if f.Records != len(parsed.Records) || f.Decisions != resW.Obs.Decisions {
		t.Errorf("footer counts records=%d decisions=%d, want %d/%d", f.Records, f.Decisions, len(parsed.Records), resW.Obs.Decisions)
	}
}

func hex16(u uint64) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		b[i] = digits[u&0xf]
		u >>= 4
	}
	return string(b)
}

// TestReplayBitIdentical records a guarded fault-injected run, then re-drives
// a fresh substrate from the trace: the replayed Result must reproduce the
// original bit for bit, including the guard accounting restored from the
// footer.
func TestReplayBitIdentical(t *testing.T) {
	col := NewCollector(testManifest())
	orig := runTraced(t, col)

	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 16, 14}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6)
	opt := testOptions(t, plan, 45) // injector still present: core-death physics
	dec, err := NewReplayDecider(col.Trace(), 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	opt.Decider = dec
	opt.Stages = []engine.Stage{NewReplayBudget(col.Trace())}
	replayed, err := engine.Run(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := ResultFingerprint(orig), ResultFingerprint(replayed); a != b {
		t.Fatalf("replay diverged: original %#x, replayed %#x", a, b)
	}
	if dec.Replayed() != len(col.Trace().Records) {
		t.Errorf("replay consumed %d of %d records", dec.Replayed(), len(col.Trace().Records))
	}
}

// TestRoundTripByteIdentical pins the codec: WriteTrace → ReadTrace →
// WriteTrace must reproduce the bytes exactly.
func TestRoundTripByteIdentical(t *testing.T) {
	col := NewCollector(testManifest())
	runTraced(t, col)

	var b1 bytes.Buffer
	if err := WriteTrace(&b1, col.Trace()); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := WriteTrace(&b2, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encode → decode → re-encode is not byte-identical")
	}
}

// TestDecodeErrors pins the typed-error contract: corrupt input never panics
// and always surfaces as *DecodeError with the offending line.
func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"not json", "{"},
		{"unknown kind", `{"kind":"telemetry"}`},
		{"kind without payload", `{"kind":"decision"}`},
		{"two payloads", `{"kind":"decision","decision":{"i":0,"now_ns":0,"budget_w":1,"chip_w":1,"power_w":[],"instr":[],"vector":[],"stall_ns":0},"footer":{"records":0,"fingerprint":"","trace_fingerprint":"","elapsed_ns":0,"total_instr":0,"energy_j":0,"decisions":0}}`},
		{"manifest mid-stream", `{"kind":"decision","decision":{"i":0,"now_ns":0,"budget_w":1,"chip_w":1,"power_w":[],"instr":[],"vector":[],"stall_ns":0}}` + "\n" + `{"kind":"manifest","manifest":{"schema":1,"cores":4,"delta_sim_ns":1,"deltas_per_explore":1,"explore_ns":1,"horizon_ns":1}}`},
		{"newer schema", `{"kind":"manifest","manifest":{"schema":99,"cores":4,"delta_sim_ns":1,"deltas_per_explore":1,"explore_ns":1,"horizon_ns":1}}`},
		{"empty trace", "\n\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %T (%v) is not a *DecodeError", err, err)
			}
			if de.Line <= 0 {
				t.Errorf("DecodeError without a line number: %v", de)
			}
		})
	}
}

// TestDiffFirstDivergence pins that Diff names the earliest difference in
// pipeline order, not just any difference.
func TestDiffFirstDivergence(t *testing.T) {
	mk := func() *Trace {
		return &Trace{Records: []Record{
			{Interval: 0, NowNs: 0, BudgetW: 70, ChipPowerW: 60, PowerW: []float64{15, 15}, Instr: []float64{1, 2}, Vector: []int{0, 0}},
			{Interval: 1, NowNs: 500, BudgetW: 70, ChipPowerW: 62, PowerW: []float64{16, 15}, Instr: []float64{1, 2}, Vector: []int{0, 1}},
			{Interval: 2, NowNs: 1000, BudgetW: 70, ChipPowerW: 61, PowerW: []float64{15, 15}, Instr: []float64{1, 2}, Vector: []int{1, 1}},
		}}
	}
	a := mk()
	if d := Diff(a, mk()); d != nil {
		t.Fatalf("identical traces diverge: %v", d)
	}

	b := mk()
	b.Records[1].PowerW[1] = 14       // earliest: interval 1, core 1 observation
	b.Records[1].Vector = []int{1, 1} // downstream symptom, same interval
	b.Records[2].BudgetW = 60         // later interval
	d := Diff(a, b)
	if d == nil {
		t.Fatal("divergence not found")
	}
	if d.Interval != 1 || d.Core != 1 || d.Field != "power_w" {
		t.Errorf("first divergence = interval %d core %d field %s, want 1/1/power_w", d.Interval, d.Core, d.Field)
	}
	if !strings.Contains(d.String(), "interval 1") || !strings.Contains(d.String(), "core 1") {
		t.Errorf("divergence rendering %q misses location", d.String())
	}

	// Mode divergence with identical observations: the decision itself.
	c := mk()
	c.Records[2].Vector = []int{0, 1}
	if d := Diff(a, c); d == nil || d.Field != "mode" || d.Interval != 2 || d.Core != 0 {
		t.Errorf("mode divergence = %+v, want interval 2 core 0 mode", d)
	}

	// Record-count mismatch after an identical prefix.
	short := mk()
	short.Records = short.Records[:2]
	if d := Diff(a, short); d == nil || d.Field != "records" || d.Interval != 2 {
		t.Errorf("count divergence = %+v, want records @2", d)
	}
}

// TestCountersSnapshot checks the engine's always-on counters land in the
// Result and render through internal/report.
func TestCountersSnapshot(t *testing.T) {
	col := NewCollector(nil)
	res := runTraced(t, col)
	if res.Obs.Decisions == 0 || res.Obs.Decisions != len(col.Trace().Records) {
		t.Fatalf("Decisions=%d, records=%d", res.Obs.Decisions, len(col.Trace().Records))
	}
	if res.Obs.TraceRecords != res.Obs.Decisions {
		t.Errorf("TraceRecords=%d, want %d", res.Obs.TraceRecords, res.Obs.Decisions)
	}
	if len(res.Obs.StageOverrides) == 0 {
		t.Fatal("no per-stage override counters")
	}
	// The fault-observe stage replaces the sample slice whenever the
	// injector perturbs anything; with 10% noise it must fire.
	found := false
	for _, so := range res.Obs.StageOverrides {
		if so.Stage == "fault-observe" && so.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("fault-observe overrides not counted: %+v", res.Obs.StageOverrides)
	}
	out := CountersTable(res.Obs).String()
	for _, want := range []string{"decisions", "overrides[fault-observe]", "trace-records"} {
		if !strings.Contains(out, want) {
			t.Errorf("counters table missing %q:\n%s", want, out)
		}
	}
}

// TestCountersTableDeltaRows checks the session/delta and invalidation rows
// render exactly when their counters are live, and stay out of the table for
// cold (sessionless) runs.
func TestCountersTableDeltaRows(t *testing.T) {
	var o engine.ObsCounters
	cold := CountersTable(o).String()
	for _, absent := range []string{"delta-solves", "invalidate-budget-step"} {
		if strings.Contains(cold, absent) {
			t.Errorf("cold counters table unexpectedly has %q:\n%s", absent, cold)
		}
	}
	o.SolverMemoHits = 3
	o.DirtyCores = 5
	o.DeltaSolves = 4
	o.DeltaCertified = 3
	o.DeltaFallbacks = 1
	o.InvalidateBudgetStep = 2
	o.InvalidateCoreDeath = 1
	out := CountersTable(o).String()
	for _, want := range []string{
		"solver-memo-hits", "delta-dirty-cores", "delta-solves", "delta-certified",
		"delta-fallbacks", "invalidate-budget-step", "invalidate-core-death",
		"invalidate-emergency", "invalidate-degraded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("counters table missing %q:\n%s", want, out)
		}
	}
}

// TestSolverNodeCounting wires a counting SolverPolicy through the engine and
// checks the node total reaches Result.Obs.
func TestSolverNodeCounting(t *testing.T) {
	plan := testPlan(t)
	sub := newFakeSub(plan, []float64{20, 18, 16, 14}, []float64{4e9, 3e9, 2e9, 1e9}, 500e-6)
	var nodes int64
	pol := core.SolverPolicy{Solver: solver.Greedy{}, NodeCount: &nodes}
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	opt := engine.Options{
		Plan:             plan,
		Budget:           func(time.Duration) float64 { return 45 },
		Decider:          engine.NewDecider(plan, pol, pred, 4, nil),
		DeltaSim:         50 * time.Microsecond,
		DeltasPerExplore: 10,
		Horizon:          2 * time.Millisecond,
	}
	res, err := engine.Run(sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.SolverNodes == 0 {
		t.Fatal("solver nodes not folded into Result.Obs")
	}
	if res.Obs.SolverNodes != nodes {
		t.Errorf("Result.Obs.SolverNodes=%d, sink=%d", res.Obs.SolverNodes, nodes)
	}
}
