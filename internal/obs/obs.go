// Package obs is the engine's observability layer: structured decision
// tracing, deterministic record/replay, and trace diffing for the global
// power manager control loop (internal/engine).
//
// A trace is versioned JSONL: one Line per text line, each a kind-tagged
// envelope holding exactly one payload — a run Manifest first, one decision
// Record per explore interval, and a Footer with the run's golden Result
// fingerprint and counter snapshot last. The format is append-friendly
// (a crashed run leaves a valid prefix), diffable line-by-line, and small
// enough to check fuzz seeds into testdata/.
//
// The package sits strictly downstream of internal/engine: the engine defines
// the Observer hook and DecisionTrace (so it never imports obs), and obs
// provides the implementations — a streaming JSONL Writer, an in-memory
// Collector, a ReplayDecider that re-drives any Substrate bit-identically
// from a recorded trace, and Diff, which names the first diverging
// interval/core/field between two runs.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the trace format version stamped into every Manifest.
// Readers reject traces from a newer schema.
const SchemaVersion = 2

// Line is the JSONL envelope: one per text line, kind-tagged, with exactly
// one payload field populated.
type Line struct {
	Kind     string    `json:"kind"`
	Manifest *Manifest `json:"manifest,omitempty"`
	Decision *Record   `json:"decision,omitempty"`
	Footer   *Footer   `json:"footer,omitempty"`
}

// Envelope kinds.
const (
	KindManifest = "manifest"
	KindDecision = "decision"
	KindFooter   = "footer"
)

// Manifest identifies a run well enough to reproduce it: the tool and tree
// that produced the trace, the substrate and workload, the control cadence,
// and the budget/fault configuration as parseable spec strings.
type Manifest struct {
	// Schema is the trace format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Tool names the producing front end ("gpmsim run", "cmpsim", ...).
	Tool string `json:"tool,omitempty"`
	// Git is `git describe --always --dirty` of the producing tree.
	Git string `json:"git,omitempty"`
	// Substrate is "cmpsim" (trace players) or "fullsim" (cycle-level chip).
	Substrate string `json:"substrate,omitempty"`
	// ComboID and Benchmarks name the workload mix.
	ComboID    string   `json:"combo,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Policy is the deciding policy's display name.
	Policy string `json:"policy,omitempty"`
	// Cores is the chip width.
	Cores int `json:"cores"`
	// Control cadence: delta-sim interval, deltas per explore interval,
	// explore interval, and horizon, all in nanoseconds.
	DeltaSimNs       int64 `json:"delta_sim_ns"`
	DeltasPerExplore int   `json:"deltas_per_explore"`
	ExploreNs        int64 `json:"explore_ns"`
	HorizonNs        int64 `json:"horizon_ns"`
	// BudgetSpec and FaultSpec are the budget and fault-scenario
	// configuration in their CLI spell-ings ("70", "seed=7,noise=0.05,...");
	// replay parses FaultSpec to rebuild the injector.
	BudgetSpec string `json:"budget,omitempty"`
	FaultSpec  string `json:"fault,omitempty"`
	// Guarded reports the run used the resilient manager.
	Guarded bool `json:"guarded,omitempty"`
	// Seed is the fault injector's seed (also inside FaultSpec; duplicated
	// for grep-ability).
	Seed int64 `json:"seed,omitempty"`
}

// StageRec is one middleware stage's effect on one decision.
type StageRec struct {
	// Name is the stage's chain name ("budget", "thermal-clamp", ...).
	Name string `json:"name"`
	// BudgetW is the budget in force after the stage ran.
	BudgetW float64 `json:"budget_w"`
	// Override reports the stage changed the budget or the observation.
	Override bool `json:"override,omitempty"`
	// DurNs is the stage's wall-clock latency (excluded from fingerprints).
	DurNs int64 `json:"dur_ns,omitempty"`
}

// Record is one explore-boundary decision: what the manager observed, what
// every middleware stage did to it, and the vector that came out.
type Record struct {
	// Interval is the explore-interval index, starting at 0.
	Interval int `json:"i"`
	// NowNs is the simulated decision time in nanoseconds.
	NowNs int64 `json:"now_ns"`
	// BudgetW is the final budget handed to the decider.
	BudgetW float64 `json:"budget_w"`
	// ChipPowerW is the independent chip-level (VRM) measurement.
	ChipPowerW float64 `json:"chip_w"`
	// PowerW/Instr are the per-core observations the manager actually saw.
	PowerW []float64 `json:"power_w"`
	Instr  []float64 `json:"instr"`
	// TruePowerW/TrueInstr are the substrate's honest observations, present
	// only when a fault stage replaced them (nil = identical to PowerW/Instr).
	TruePowerW []float64 `json:"true_power_w,omitempty"`
	TrueInstr  []float64 `json:"true_instr,omitempty"`
	// Stages is the middleware chain's per-stage budget refinement.
	Stages []StageRec `json:"stages,omitempty"`
	// Vector is the mode vector adopted for the coming interval.
	Vector []int `json:"vector"`
	// Candidate is the policy's raw pre-sanitize vector when it differs from
	// Vector (omitted otherwise, and while the guard bypassed the policy).
	Candidate []int `json:"candidate,omitempty"`
	// Guard reports the resilient manager's emergency throttle made this
	// decision instead of the policy.
	Guard bool `json:"guard,omitempty"`
	// StallNs is the synchronized transition stall charged for the switch.
	StallNs int64 `json:"stall_ns"`
	// DecideNs is the decider's wall-clock latency (excluded from
	// fingerprints).
	DecideNs int64 `json:"decide_ns,omitempty"`
	// Sup reports the decision ran under the engine's decision supervisor
	// (schema ≥ 2; absent in unsupervised runs and pre-supervisor traces).
	// The remaining supervisor fields are meaningful only when it is set.
	Sup bool `json:"sup,omitempty"`
	// SupRung is the degradation-ladder rung that produced Vector (0 =
	// configured decider, 1 = greedy kernel, 2 = last-known-good refit, 3 =
	// uniform deepest throttle).
	SupRung int `json:"sup_rung,omitempty"`
	// SupRejected/SupRepaired record the conformance gate's work on this
	// decision; SupPredPowerW is the gate's predicted chip power for Vector.
	SupRejected   bool    `json:"sup_rejected,omitempty"`
	SupRepaired   bool    `json:"sup_repaired,omitempty"`
	SupPredPowerW float64 `json:"sup_pred_w,omitempty"`
	// SupTimedOut reports the watchdog abandoned the configured decider this
	// interval (wall-clock dependent, excluded from fingerprints).
	SupTimedOut bool `json:"sup_timed_out,omitempty"`
}

// StageCount is one stage's override tally in the Footer.
type StageCount struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
}

// Footer closes a trace with the run's outcome: the golden Result
// fingerprint, the headline accounting, the guard's intervention counters
// (which a ReplayDecider needs to reproduce the Result bit-identically), and
// the engine's observability counter snapshot.
type Footer struct {
	// Records is the number of decision Records preceding the footer.
	Records int `json:"records"`
	// Fingerprint is ResultFingerprint(result) in hex — the same golden hash
	// internal/cmpsim pins; TraceFingerprint hashes the deterministic fields
	// of the records themselves.
	Fingerprint      string `json:"fingerprint"`
	TraceFingerprint string `json:"trace_fingerprint"`
	// Headline accounting.
	ElapsedNs  int64   `json:"elapsed_ns"`
	TotalInstr float64 `json:"total_instr"`
	EnergyJ    float64 `json:"energy_j"`
	// Guard accounting, folded from the resilient manager at run end. A
	// ReplayDecider reports these as its own GuardStats so a replayed run
	// reproduces the original Result's robustness fields bit-identically.
	Guarded            bool  `json:"guarded,omitempty"`
	EmergencyEntries   int   `json:"emergency_entries,omitempty"`
	EmergencyIntervals int   `json:"emergency_intervals,omitempty"`
	RecoveryLatencyNs  int64 `json:"recovery_latency_ns,omitempty"`
	DeadCores          []int `json:"dead_cores,omitempty"`
	SanitizedSamples   int   `json:"sanitized_samples,omitempty"`
	RescaledIntervals  int   `json:"rescaled_intervals,omitempty"`
	// Observability counter snapshot (engine.Result.Obs).
	Decisions      int          `json:"decisions"`
	GuardOverrides int          `json:"guard_overrides,omitempty"`
	SolverNodes    int64        `json:"solver_nodes,omitempty"`
	StageOverrides []StageCount `json:"stage_overrides,omitempty"`
	// Decision-supervisor counters (schema ≥ 2; all omitted without one).
	SupervisorRungs    []int `json:"sup_rungs,omitempty"`
	ConformanceRejects int   `json:"sup_conf_rejects,omitempty"`
	ConformanceRepairs int   `json:"sup_conf_repairs,omitempty"`
	DeadlineTimeouts   int   `json:"sup_timeouts,omitempty"`
	WedgedDecisions    int   `json:"sup_wedged,omitempty"`
	DegradedDecisions  int   `json:"sup_degraded,omitempty"`
	LongestDegraded    int   `json:"sup_longest_degraded,omitempty"`
}

// Trace is a fully parsed trace: manifest, decision records in interval
// order, and the footer. Manifest and Footer may be nil (truncated trace).
type Trace struct {
	Manifest *Manifest
	Records  []Record
	Footer   *Footer
}

// PolicyName returns the manifest's policy name, or "replay" when unknown.
func (t *Trace) PolicyName() string {
	if t.Manifest != nil && t.Manifest.Policy != "" {
		return t.Manifest.Policy
	}
	return "replay"
}

// DecodeError is the typed error for malformed trace input: the 1-based line
// number and the underlying cause. Corrupt input never panics the codec.
type DecodeError struct {
	Line int
	Err  error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("obs: trace line %d: %v", e.Line, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// MarshalLine encodes one envelope as a single JSONL line (trailing newline
// included). Encoding is deterministic: struct field order is fixed and
// float formatting is Go's shortest round-trip form.
func MarshalLine(l *Line) ([]byte, error) {
	b, err := json.Marshal(l)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseLine decodes one JSONL line into its envelope. lineNo (1-based) is
// used for error reporting only. The envelope is validated structurally:
// known kind, exactly the matching payload present.
func ParseLine(data []byte, lineNo int) (*Line, error) {
	var l Line
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, &DecodeError{Line: lineNo, Err: err}
	}
	var want *bool
	present := func(p bool) *bool { return &p }
	switch l.Kind {
	case KindManifest:
		want = present(l.Manifest != nil)
	case KindDecision:
		want = present(l.Decision != nil)
	case KindFooter:
		want = present(l.Footer != nil)
	default:
		return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("unknown kind %q", l.Kind)}
	}
	if !*want {
		return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("kind %q without its payload", l.Kind)}
	}
	nPayloads := 0
	for _, p := range []bool{l.Manifest != nil, l.Decision != nil, l.Footer != nil} {
		if p {
			nPayloads++
		}
	}
	if nPayloads != 1 {
		return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("kind %q with %d payloads", l.Kind, nPayloads)}
	}
	return &l, nil
}

// ReadTrace parses a whole JSONL trace: optional manifest first, decision
// records in order, optional footer last. Blank lines are skipped. Structural
// violations (manifest mid-stream, records after the footer, newer schema)
// return a *DecodeError.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		l, err := ParseLine(raw, lineNo)
		if err != nil {
			return nil, err
		}
		switch l.Kind {
		case KindManifest:
			if t.Manifest != nil || len(t.Records) > 0 || t.Footer != nil {
				return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("manifest must be the first line")}
			}
			if l.Manifest.Schema > SchemaVersion {
				return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("schema %d newer than supported %d", l.Manifest.Schema, SchemaVersion)}
			}
			t.Manifest = l.Manifest
		case KindDecision:
			if t.Footer != nil {
				return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("decision record after footer")}
			}
			t.Records = append(t.Records, *l.Decision)
		case KindFooter:
			if t.Footer != nil {
				return nil, &DecodeError{Line: lineNo, Err: fmt.Errorf("duplicate footer")}
			}
			t.Footer = l.Footer
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &DecodeError{Line: lineNo + 1, Err: err}
	}
	if t.Manifest == nil && len(t.Records) == 0 && t.Footer == nil {
		return nil, &DecodeError{Line: 1, Err: fmt.Errorf("empty trace")}
	}
	return t, nil
}

// ReadTraceFile parses the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// WriteTrace serializes a parsed trace back to JSONL (manifest, records,
// footer) — the inverse of ReadTrace.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if t.Manifest != nil {
		b, err := MarshalLine(&Line{Kind: KindManifest, Manifest: t.Manifest})
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	for i := range t.Records {
		b, err := MarshalLine(&Line{Kind: KindDecision, Decision: &t.Records[i]})
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if t.Footer != nil {
		b, err := MarshalLine(&Line{Kind: KindFooter, Footer: t.Footer})
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}
