package obs

import (
	"gpm/internal/core"
	"gpm/internal/modes"
)

// This file exposes a Record's telemetry back in the engine's own types, so
// offline consumers (internal/calib's calibration scoring and counterfactual
// replay) can re-drive managers and predictors from a recorded trace without
// re-deriving the JSONL field conventions.
//
// Done flags are not serialized: §5.1 ends a run at the first completion, so
// no recorded decision ever observed a finished core — every reconstructed
// sample is live.

// ObservedSamples reconstructs the per-core samples the manager actually saw
// (post-fault-stage), appending to buf (pass nil to allocate).
func (r *Record) ObservedSamples(buf []core.Sample) []core.Sample {
	buf = buf[:0]
	for c := range r.PowerW {
		var instr float64
		if c < len(r.Instr) {
			instr = r.Instr[c]
		}
		buf = append(buf, core.Sample{PowerW: r.PowerW[c], Instr: instr})
	}
	return buf
}

// TrueSamples reconstructs the substrate's honest per-core observations:
// TruePowerW/TrueInstr when a fault stage replaced the observation, the
// observed series otherwise (nil means identical, per the schema). Appends
// to buf (pass nil to allocate).
func (r *Record) TrueSamples(buf []core.Sample) []core.Sample {
	if len(r.TruePowerW) == 0 && len(r.TrueInstr) == 0 {
		return r.ObservedSamples(buf)
	}
	buf = buf[:0]
	for c := range r.TruePowerW {
		var instr float64
		if c < len(r.TrueInstr) {
			instr = r.TrueInstr[c]
		}
		buf = append(buf, core.Sample{PowerW: r.TruePowerW[c], Instr: instr})
	}
	return buf
}

// ModeVector converts the record's adopted vector to modes.Vector, appending
// to buf (pass nil to allocate).
func (r *Record) ModeVector(buf modes.Vector) modes.Vector {
	buf = buf[:0]
	for _, m := range r.Vector {
		buf = append(buf, modes.Mode(m))
	}
	return buf
}
