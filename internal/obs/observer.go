package obs

import (
	"bufio"
	"fmt"
	"io"

	"gpm/internal/engine"
	"gpm/internal/report"
)

// recordOf converts the engine's reusable DecisionTrace into a standalone
// Record, copying every slice the engine will overwrite next interval. The
// true-observation series are emitted only when a fault stage actually
// replaced the samples (the common fault-free case stays half the size).
func recordOf(t *engine.DecisionTrace) Record {
	n := len(t.Samples)
	rec := Record{
		Interval:   t.Interval,
		NowNs:      t.Now.Nanoseconds(),
		BudgetW:    t.BudgetW,
		ChipPowerW: t.ChipPowerW,
		PowerW:     make([]float64, n),
		Instr:      make([]float64, n),
		Vector:     make([]int, len(t.Final)),
		Guard:      t.GuardEmergency,
		StallNs:    t.Stall.Nanoseconds(),
		DecideNs:   t.DecideNs,
	}
	for c, s := range t.Samples {
		rec.PowerW[c] = s.PowerW
		rec.Instr[c] = s.Instr
	}
	perturbed := len(t.TrueSamples) > 0 && len(t.Samples) > 0 && &t.TrueSamples[0] != &t.Samples[0]
	if perturbed {
		rec.TruePowerW = make([]float64, len(t.TrueSamples))
		rec.TrueInstr = make([]float64, len(t.TrueSamples))
		for c, s := range t.TrueSamples {
			rec.TruePowerW[c] = s.PowerW
			rec.TrueInstr[c] = s.Instr
		}
	}
	if len(t.Stages) > 0 {
		rec.Stages = make([]StageRec, len(t.Stages))
		for i, s := range t.Stages {
			rec.Stages[i] = StageRec{Name: s.Name, BudgetW: s.BudgetW, Override: s.Override, DurNs: s.DurNs}
		}
	}
	for c, m := range t.Final {
		rec.Vector[c] = int(m)
	}
	if t.Candidate != nil {
		rec.Candidate = make([]int, len(t.Candidate))
		for c, m := range t.Candidate {
			rec.Candidate[c] = int(m)
		}
	}
	if t.Supervised {
		rec.Sup = true
		rec.SupRung = t.SupRung
		rec.SupRejected = t.SupRejected
		rec.SupRepaired = t.SupRepaired
		rec.SupPredPowerW = t.SupPredPowerW
		rec.SupTimedOut = t.SupTimedOut
	}
	return rec
}

// footerOf snapshots a finished Result into the trace Footer.
func footerOf(r *engine.Result, records int, traceFP uint64) *Footer {
	f := &Footer{
		Records:          records,
		Fingerprint:      fmt.Sprintf("%016x", ResultFingerprint(r)),
		TraceFingerprint: fmt.Sprintf("%016x", traceFP),
		ElapsedNs:        r.Elapsed.Nanoseconds(),
		TotalInstr:       r.TotalInstr,
		EnergyJ:          r.EnergyJ,

		EmergencyEntries:   r.EmergencyEntries,
		EmergencyIntervals: r.EmergencyIntervals,
		RecoveryLatencyNs:  r.RecoveryLatency.Nanoseconds(),
		SanitizedSamples:   r.SanitizedSamples,
		RescaledIntervals:  r.RescaledIntervals,

		Decisions:      r.Obs.Decisions,
		GuardOverrides: r.Obs.GuardOverrides,
		SolverNodes:    r.Obs.SolverNodes,
	}
	if len(r.DeadCores) > 0 {
		f.DeadCores = append([]int(nil), r.DeadCores...)
	}
	for _, so := range r.Obs.StageOverrides {
		f.StageOverrides = append(f.StageOverrides, StageCount{Stage: so.Stage, Count: so.Count})
	}
	supervised := false
	for _, n := range r.Obs.SupervisorRungs {
		if n > 0 {
			supervised = true
		}
	}
	if supervised {
		f.SupervisorRungs = append([]int(nil), r.Obs.SupervisorRungs[:]...)
		f.ConformanceRejects = r.Obs.ConformanceRejects
		f.ConformanceRepairs = r.Obs.ConformanceRepairs
		f.DeadlineTimeouts = r.Obs.DeadlineTimeouts
		f.WedgedDecisions = r.Obs.WedgedDecisions
		f.DegradedDecisions = r.Obs.DegradedDecisions
		f.LongestDegraded = r.Obs.LongestDegraded
	}
	return f
}

// Writer streams a run to JSONL as it happens: the manifest at construction,
// one decision line per explore interval, the footer at RunEnd. Errors are
// sticky — the first write failure is reported by Err/Close and later calls
// are no-ops, so the engine loop never has to check mid-run.
type Writer struct {
	bw      *bufio.Writer
	closer  io.Closer
	err     error
	records int
	th      traceHasher
	guarded bool
}

// NewWriter starts a trace on w with the given manifest (nil writes no
// manifest line; replay then needs external configuration). If w is also an
// io.Closer, Close closes it.
func NewWriter(w io.Writer, m *Manifest) (*Writer, error) {
	tw := &Writer{bw: bufio.NewWriter(w), th: newTraceHasher()}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	if m != nil {
		mm := *m
		mm.Schema = SchemaVersion
		tw.guarded = mm.Guarded
		b, err := MarshalLine(&Line{Kind: KindManifest, Manifest: &mm})
		if err != nil {
			return nil, err
		}
		if _, err := tw.bw.Write(b); err != nil {
			return nil, err
		}
	}
	return tw, nil
}

// Decision implements engine.Observer.
func (w *Writer) Decision(t *engine.DecisionTrace) {
	if w.err != nil {
		return
	}
	rec := recordOf(t)
	w.th.add(&rec)
	b, err := MarshalLine(&Line{Kind: KindDecision, Decision: &rec})
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	w.records++
}

// RunEnd implements engine.Observer: writes the footer.
func (w *Writer) RunEnd(r *engine.Result) {
	if w.err != nil {
		return
	}
	f := footerOf(r, w.records, w.th.sum())
	f.Guarded = w.guarded || r.EmergencyEntries > 0 || r.SanitizedSamples > 0 ||
		r.RescaledIntervals > 0 || len(r.DeadCores) > 0 || r.Obs.GuardOverrides > 0
	b, err := MarshalLine(&Line{Kind: KindFooter, Footer: f})
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
	}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Close flushes and closes the underlying writer (when it is a Closer) and
// returns the first error seen over the writer's lifetime.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if w.closer != nil {
		if err := w.closer.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	return w.err
}

// Collector is the in-memory engine.Observer: it accumulates a full Trace
// for tests and for trace diffing without touching the filesystem.
type Collector struct {
	Manifest *Manifest
	trace    Trace
	th       traceHasher
	guarded  bool
}

// NewCollector builds a collector; m may be nil.
func NewCollector(m *Manifest) *Collector {
	c := &Collector{Manifest: m, th: newTraceHasher()}
	if m != nil {
		mm := *m
		mm.Schema = SchemaVersion
		c.trace.Manifest = &mm
		c.guarded = mm.Guarded
	}
	return c
}

// Decision implements engine.Observer.
func (c *Collector) Decision(t *engine.DecisionTrace) {
	rec := recordOf(t)
	c.th.add(&rec)
	c.trace.Records = append(c.trace.Records, rec)
}

// RunEnd implements engine.Observer.
func (c *Collector) RunEnd(r *engine.Result) {
	f := footerOf(r, len(c.trace.Records), c.th.sum())
	f.Guarded = c.guarded || r.EmergencyEntries > 0 || r.SanitizedSamples > 0 ||
		r.RescaledIntervals > 0 || len(r.DeadCores) > 0 || r.Obs.GuardOverrides > 0
	c.trace.Footer = f
}

// Trace returns the collected trace (valid after the run ends).
func (c *Collector) Trace() *Trace { return &c.trace }

// Multi fans one engine.Observer stream out to several (e.g. a Writer to
// disk plus a Collector for an in-run diff).
type Multi []engine.Observer

// Decision implements engine.Observer.
func (m Multi) Decision(t *engine.DecisionTrace) {
	for _, o := range m {
		o.Decision(t)
	}
}

// RunEnd implements engine.Observer.
func (m Multi) RunEnd(r *engine.Result) {
	for _, o := range m {
		o.RunEnd(r)
	}
}

// Compile-time proof the implementations satisfy the engine hook.
var (
	_ engine.Observer = (*Writer)(nil)
	_ engine.Observer = (*Collector)(nil)
	_ engine.Observer = (Multi)(nil)
)

// CountersTable renders the engine's observability counter snapshot as a
// report table: decisions, per-stage overrides, guard throttles, solver
// nodes, trace records.
func CountersTable(o engine.ObsCounters) *report.Table {
	t := report.NewTable("observability counters", "counter", "value")
	t.AddRowf("decisions", o.Decisions)
	for _, so := range o.StageOverrides {
		t.AddRowf("overrides["+so.Stage+"]", so.Count)
	}
	t.AddRowf("guard-overrides", o.GuardOverrides)
	t.AddRowf("solver-nodes", o.SolverNodes)
	t.AddRowf("trace-records", o.TraceRecords)
	if o.SolverMemoHits != 0 || o.SolverWarmSolves != 0 || o.DeltaSolves != 0 {
		t.AddRowf("warm-hints", o.WarmHints)
		t.AddRowf("solver-memo-hits", o.SolverMemoHits)
		t.AddRowf("solver-warm-solves", o.SolverWarmSolves)
		t.AddRowf("solver-hint-returns", o.SolverHintReturns)
		t.AddRowf("delta-dirty-cores", o.DirtyCores)
		t.AddRowf("delta-solves", o.DeltaSolves)
		t.AddRowf("delta-certified", o.DeltaCertified)
		t.AddRowf("delta-fallbacks", o.DeltaFallbacks)
	}
	if n := o.InvalidateBudgetStep + o.InvalidateCoreDeath + o.InvalidateEmergency + o.InvalidateDegraded; n > 0 {
		t.AddRowf("invalidate-budget-step", o.InvalidateBudgetStep)
		t.AddRowf("invalidate-core-death", o.InvalidateCoreDeath)
		t.AddRowf("invalidate-emergency", o.InvalidateEmergency)
		t.AddRowf("invalidate-degraded", o.InvalidateDegraded)
	}
	supervised := false
	for _, n := range o.SupervisorRungs {
		if n > 0 {
			supervised = true
		}
	}
	if supervised {
		for rung, n := range o.SupervisorRungs {
			t.AddRowf(fmt.Sprintf("sup-rung[%d]", rung), n)
		}
		t.AddRowf("sup-conf-rejects", o.ConformanceRejects)
		t.AddRowf("sup-conf-repairs", o.ConformanceRepairs)
		t.AddRowf("sup-timeouts", o.DeadlineTimeouts)
		t.AddRowf("sup-wedged", o.WedgedDecisions)
		t.AddRowf("sup-degraded", o.DegradedDecisions)
		t.AddRowf("sup-longest-degraded", o.LongestDegraded)
	}
	return t
}
