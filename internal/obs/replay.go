package obs

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/engine"
	"gpm/internal/modes"
)

// ReplayDecider re-drives a substrate from a recorded trace: instead of
// sensing and predicting, every StepDecision returns the next recorded mode
// vector. Driven with the same substrate, injector, thermal state and
// cadence as the recording run, the engine reproduces the original Result
// bit-identically — the recorded vectors and budgets are the only inputs the
// simulated physics ever consumed (observation noise only ever influenced
// the decisions, which are now replayed verbatim). Guard accounting is
// restored from the trace footer so the folded Result fields match too.
type ReplayDecider struct {
	trace   *Trace
	i       int
	current modes.Vector
	explore time.Duration
}

// NewReplayDecider builds a replay decider over t. explore is the run's
// explore interval, used to convert the footer's recovery latency back to
// the guard's interval count (pass the same value the engine runs with).
func NewReplayDecider(t *Trace, explore time.Duration) (*ReplayDecider, error) {
	if len(t.Records) == 0 {
		return nil, fmt.Errorf("obs: replay: trace has no decision records")
	}
	n := len(t.Records[0].Vector)
	if n == 0 {
		return nil, fmt.Errorf("obs: replay: trace records have empty mode vectors")
	}
	return &ReplayDecider{
		trace:   t,
		current: modes.Uniform(n, modes.Turbo),
		explore: explore,
	}, nil
}

// StepDecision implements engine.Decider: it returns the recorded vector for
// the next interval. A run that outlives its trace (cadence mismatch) holds
// the last recorded vector rather than failing mid-loop; Replayed reports
// how many records were consumed so callers can detect the mismatch.
func (d *ReplayDecider) StepDecision(core.Decision) modes.Vector {
	rec := &d.trace.Records[len(d.trace.Records)-1]
	if d.i < len(d.trace.Records) {
		rec = &d.trace.Records[d.i]
		d.i++
	}
	v := make(modes.Vector, len(rec.Vector))
	for c, m := range rec.Vector {
		v[c] = modes.Mode(m)
	}
	d.current = v
	return v
}

// Current implements engine.Decider.
func (d *ReplayDecider) Current() modes.Vector { return d.current.Clone() }

// Replayed reports how many trace records have been consumed.
func (d *ReplayDecider) Replayed() int { return d.i }

// GuardStats implements engine.Decider by restoring the recording run's
// guard accounting from the trace footer, so the engine folds the same
// EmergencyEntries/RecoveryLatency/DeadCores/... into the replayed Result.
// The footer stores the already-summed sanitized+clamped count; it is
// reported wholly as SanitizedSamples (the engine only consumes the sum).
func (d *ReplayDecider) GuardStats() (core.ResilientStats, bool) {
	f := d.trace.Footer
	if f == nil || !f.Guarded {
		return core.ResilientStats{}, false
	}
	st := core.ResilientStats{
		SanitizedSamples:   f.SanitizedSamples,
		RescaledIntervals:  f.RescaledIntervals,
		EmergencyEntries:   f.EmergencyEntries,
		EmergencyIntervals: f.EmergencyIntervals,
		DeadCores:          append([]int(nil), f.DeadCores...),
	}
	if d.explore > 0 {
		st.LongestEmergency = int(time.Duration(f.RecoveryLatencyNs) / d.explore)
	}
	return st, true
}

// ReplayBudget is the replay counterpart of the whole budget middleware
// chain: it sets each decision's budget to the recorded final value, so
// fault spikes and thermal clamps replay exactly without re-running the
// stages that produced them.
type ReplayBudget struct {
	trace *Trace
	i     int
}

// NewReplayBudget builds the replay budget stage over t.
func NewReplayBudget(t *Trace) *ReplayBudget { return &ReplayBudget{trace: t} }

// Name implements engine.Stage.
func (b *ReplayBudget) Name() string { return "replay-budget" }

// Apply implements engine.Stage.
func (b *ReplayBudget) Apply(st *engine.Step) error {
	if len(b.trace.Records) == 0 {
		return fmt.Errorf("obs: replay: trace has no decision records")
	}
	rec := &b.trace.Records[len(b.trace.Records)-1]
	if b.i < len(b.trace.Records) {
		rec = &b.trace.Records[b.i]
		b.i++
		if want := time.Duration(rec.NowNs); want != st.Now {
			return fmt.Errorf("obs: replay: cadence mismatch at interval %d: trace recorded t=%v, engine at t=%v", rec.Interval, want, st.Now)
		}
	}
	st.BudgetW = rec.BudgetW
	return nil
}
