// Package report renders experiment results as aligned text tables, CSV, and
// ASCII time-series charts, so every paper table and figure can be emitted
// on a terminal or piped into plotting tools.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which renders with 3 significant decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSV renders the table as RFC-4180 comma-separated values: cells containing
// commas, double quotes, or line breaks are quoted, with embedded quotes
// doubled. (Historically unquoted — safe for the purely numeric/identifier
// content of the paper tables, broken the moment trace-manifest strings like
// fault specs `seed=7,noise=0.05` land in a cell.)
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// csvCell quotes one CSV cell per RFC 4180 when it contains a comma, a double
// quote, or a line break; other cells pass through unchanged.
func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

// Sparkline renders xs as a one-line unicode sparkline scaled to [min,max].
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if span > 0 {
			i = int((x - lo) / span * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[i])
	}
	return b.String()
}

// TimeSeries renders a labeled ASCII chart of one or more series sharing an
// x-axis, downsampled to width columns.
type TimeSeries struct {
	Title  string
	XLabel string
	Width  int
	series []namedSeries
}

type namedSeries struct {
	name string
	xs   []float64
}

// NewTimeSeries constructs a chart; width <= 0 defaults to 100 columns.
func NewTimeSeries(title, xlabel string, width int) *TimeSeries {
	if width <= 0 {
		width = 100
	}
	return &TimeSeries{Title: title, XLabel: xlabel, Width: width}
}

// Add appends a named series.
func (ts *TimeSeries) Add(name string, xs []float64) {
	ts.series = append(ts.series, namedSeries{name: name, xs: xs})
}

// downsample averages xs into w buckets.
func downsample(xs []float64, w int) []float64 {
	if len(xs) <= w {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	out := make([]float64, w)
	for i := 0; i < w; i++ {
		lo := i * len(xs) / w
		hi := (i + 1) * len(xs) / w
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, x := range xs[lo:hi] {
			s += x
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// String renders each series as a labeled sparkline with min/mean/max.
func (ts *TimeSeries) String() string {
	var b strings.Builder
	if ts.Title != "" {
		fmt.Fprintf(&b, "%s\n", ts.Title)
	}
	nameW := 0
	for _, s := range ts.series {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}
	for _, s := range ts.series {
		d := downsample(s.xs, ts.Width)
		lo, hi, sum := d[0], d[0], 0.0
		for _, x := range d {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			sum += x
		}
		fmt.Fprintf(&b, "%-*s %s  [min %.3g mean %.3g max %.3g]\n",
			nameW, s.name, Sparkline(d), lo, sum/float64(len(d)), hi)
	}
	if ts.XLabel != "" {
		fmt.Fprintf(&b, "%s\n", ts.XLabel)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// W formats watts with one decimal.
func W(x float64) string { return fmt.Sprintf("%.1fW", x) }
