package report

import (
	"strings"
	"testing"
)

func TestTableAlignmentAndContent(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	s := tb.String()
	if !strings.Contains(s, "Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// All data lines share the same column start for "value".
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "1") || !strings.HasPrefix(lines[4][idx:], "22222") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "dropped")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Error("short row not padded")
	}
	if len(tb.Rows[1]) != 2 {
		t.Error("long row not truncated")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("x", 1.23456, 7)
	if tb.Rows[0][1] != "1.235" {
		t.Errorf("float cell %q", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "7" {
		t.Errorf("int cell %q", tb.Rows[0][2])
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2")
	got := tb.CSV()
	want := "a,b\n1,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// TestCSVHostileCells pins RFC-4180 quoting: cells containing commas, double
// quotes, or line breaks must be quoted with embedded quotes doubled, and
// plain cells must stay unquoted.
func TestCSVHostileCells(t *testing.T) {
	cases := []struct {
		name string
		cell string
		want string // the rendered form of the cell in the CSV output
	}{
		{"plain", "maxbips", "maxbips"},
		{"empty", "", ""},
		{"space", "a b", "a b"},
		{"comma", "seed=7,noise=0.05", `"seed=7,noise=0.05"`},
		{"quote", `he said "go"`, `"he said ""go"""`},
		{"only-quote", `"`, `""""`},
		{"newline", "line1\nline2", "\"line1\nline2\""},
		{"carriage-return", "a\rb", "\"a\rb\""},
		{"crlf", "a\r\nb", "\"a\r\nb\""},
		{"comma-and-quote", `x,"y"`, `"x,""y"""`},
		{"semicolon", "a;b", "a;b"}, // not special in RFC 4180
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := NewTable("", "k", "v")
			tb.AddRow("key", tc.cell)
			got := tb.CSV()
			want := "k,v\nkey," + tc.want + "\n"
			if got != want {
				t.Errorf("CSV = %q, want %q", got, want)
			}
		})
	}
	// A hostile header cell is quoted the same way as a data cell.
	tb := NewTable("", "name", "fault,spec")
	tb.AddRow("r", "v")
	if got, want := tb.CSV(), "name,\"fault,spec\"\nr,v\n"; got != want {
		t.Errorf("hostile header CSV = %q, want %q", got, want)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := Sparkline([]float64{0, 1})
	runes := []rune(s)
	if len(runes) != 2 {
		t.Fatalf("sparkline %q", s)
	}
	if runes[0] != '▁' || runes[1] != '█' {
		t.Errorf("sparkline extremes %q", s)
	}
	// Constant series must not divide by zero.
	if flat := Sparkline([]float64{5, 5, 5}); len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline %q", flat)
	}
}

func TestTimeSeriesDownsamples(t *testing.T) {
	ts := NewTimeSeries("title", "x", 10)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	ts.Add("ramp", xs)
	s := ts.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "ramp") || !strings.Contains(s, "x") {
		t.Errorf("series output missing parts:\n%s", s)
	}
	if !strings.Contains(s, "min 49.5") { // first bucket mean of 0..99
		t.Errorf("downsampled min wrong:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct: %s", Pct(0.123))
	}
	if W(68.04) != "68.0W" {
		t.Errorf("W: %s", W(68.04))
	}
}
