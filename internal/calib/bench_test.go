package calib

import (
	"testing"
	"time"

	"gpm/internal/cmpsim"
	"gpm/internal/config"
	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/power"
	"gpm/internal/trace"
	"gpm/internal/workload"
)

// BenchmarkCounterfactualReplay measures a full three-lane replay (policy
// manager + oracle solve + outcome scoring per interval) of a recorded
// cmpsim run; the bench-check gate pins the allocation budget of the warm
// sub-benchmark.
func BenchmarkCounterfactualReplay(b *testing.B) {
	cfg := config.Default(4)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	lib := trace.NewLibrary(cfg, power.Default(), plan)
	combo := workload.FourWay[0]
	col := obs.NewCollector(nil)
	if _, err := cmpsim.Run(lib, combo, cmpsim.Options{
		Budget:   cmpsim.FixedBudget(70),
		Policy:   core.MaxBIPS{},
		Horizon:  16 * time.Millisecond,
		Observer: col,
	}); err != nil {
		b.Fatal(err)
	}
	tr := col.Trace()
	memBound, err := cmpsim.MemBoundedness(lib, combo)
	if err != nil {
		b.Fatal(err)
	}
	opt := ReplayOptions{
		Plan:      plan,
		Predictor: core.Predictor{Plan: plan, ExploreSeconds: cfg.Sim.Explore.Seconds()},
		Policy:    core.Priority{},
		MemBound:  memBound,
	}
	b.Run("warm-replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Replay(tr, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
