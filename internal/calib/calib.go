// Package calib closes the fidelity loop the paper leaves open: it
// quantifies how *good* the global power manager's predictions and decisions
// were, not just what they were (internal/obs records the latter).
//
// Three instruments, all operating offline on recorded decision traces:
//
//   - Calibration scoring (ScoreTrace): replay a trace's telemetry through a
//     §5.5 predictor and score predicted-vs-actual per-interval chip power
//     and committed instructions with MAPE, bias and Pearson r. Run on
//     matched cmpsim/fullsim traces (experiment.CalibrationSweep), this is
//     the "analytic model vs cycle-level ground truth" audit that PAPERS.md's
//     energy-model-accuracy critique calls for.
//   - Cross-substrate agreement (CrossFit): the same statistics between two
//     traces of the same management problem on different substrates.
//   - Counterfactual replay (Replay, replay.go): re-drive a recorded trace's
//     observed telemetry through alternate policies and an oracle solve,
//     reporting per-interval and cumulative regret — the paper attributes
//     MaxBIPS's gap to oracle performance to exactly this prediction error.
package calib

import (
	"fmt"

	"gpm/internal/core"
	"gpm/internal/metrics"
	"gpm/internal/modes"
	"gpm/internal/obs"
)

// Fit is one predicted-vs-actual series comparison.
type Fit struct {
	// N is the number of scored pairs.
	N int `json:"n"`
	// MAPE is the mean absolute percentage error as a fraction.
	MAPE float64 `json:"mape"`
	// Bias is the mean signed error (predicted − actual) in series units.
	Bias float64 `json:"bias"`
	// R is the Pearson correlation; meaningful only when RDefined (a
	// constant series has no defined correlation — R stays 0 so the struct
	// remains JSON-encodable).
	R        float64 `json:"r"`
	RDefined bool    `json:"r_defined"`
}

// FitSeries scores a predicted series against an actual series. MAPE or bias
// rejecting the input (empty, length mismatch, non-finite entries, all-zero
// actuals) is an error; an undefined Pearson r (constant series) is not —
// it reports RDefined=false.
func FitSeries(pred, actual []float64) (Fit, error) {
	mape, err := metrics.MAPE(pred, actual)
	if err != nil {
		return Fit{}, err
	}
	bias, err := metrics.Bias(pred, actual)
	if err != nil {
		return Fit{}, err
	}
	f := Fit{N: len(pred), MAPE: mape, Bias: bias}
	if r, err := metrics.PearsonR(pred, actual); err == nil {
		f.R = r
		f.RDefined = true
	}
	return f, nil
}

// Score is one trace's calibration result: how well a predictor's chip-level
// forecasts tracked what the chip then actually did.
type Score struct {
	// Substrate/Policy/ComboID identify the scored run (from the trace
	// manifest; empty when the trace has none).
	Substrate string `json:"substrate,omitempty"`
	Policy    string `json:"policy,omitempty"`
	ComboID   string `json:"combo,omitempty"`
	// MeanBudgetW is the mean recorded per-decision budget.
	MeanBudgetW float64 `json:"mean_budget_w"`
	// Intervals is the number of scored prediction/outcome pairs
	// (records − 1: the last decision's outcome was never observed).
	Intervals int `json:"intervals"`
	// Power and Instr are the chip-level fits.
	Power Fit `json:"power"`
	Instr Fit `json:"instr"`
	// Per-interval chip-level series backing the fits: entry i is the
	// prediction made at record i for the vector it adopted, paired with the
	// true outcome observed at record i+1.
	PredPowerW   []float64 `json:"pred_power_w"`
	ActualPowerW []float64 `json:"actual_power_w"`
	PredInstr    []float64 `json:"pred_instr"`
	ActualInstr  []float64 `json:"actual_instr"`
}

// ScoreTrace replays a recorded trace's telemetry through pred and scores
// its chip-level forecasts. At each record the predictor consumes exactly
// what the recording manager's predictor consumed — the observed
// (post-fault) samples under the vector then in force — and its prediction
// for the adopted vector is paired with the next record's *true* telemetry.
// The score therefore measures decision-relevant prediction error: model
// error plus whatever the sensors were lying about.
//
// pred may be stateful (a fresh core.HistoryPredictor scores "what would the
// phase predictor have seen"); it is stepped once per record in order.
func ScoreTrace(t *obs.Trace, plan modes.Plan, pred core.MatrixPredictor) (*Score, error) {
	if len(t.Records) < 2 {
		return nil, fmt.Errorf("calib: trace has %d decision records; need at least 2 to pair predictions with outcomes", len(t.Records))
	}
	n := len(t.Records[0].Vector)
	if n == 0 {
		return nil, fmt.Errorf("calib: trace records have empty mode vectors")
	}
	s := &Score{Intervals: len(t.Records) - 1}
	if m := t.Manifest; m != nil {
		s.Substrate = m.Substrate
		s.Policy = m.Policy
		s.ComboID = m.ComboID
	}

	var mx core.Matrices
	current := modes.Uniform(n, modes.Turbo)
	var samples []core.Sample
	var vbuf modes.Vector
	for i := range t.Records {
		rec := &t.Records[i]
		samples = rec.ObservedSamples(samples)
		if len(samples) != n {
			return nil, fmt.Errorf("calib: record %d has %d cores, record 0 has %d", i, len(samples), n)
		}
		vbuf = rec.ModeVector(vbuf)
		if len(vbuf) != n {
			return nil, fmt.Errorf("calib: record %d vector has %d cores, want %d", i, len(vbuf), n)
		}
		for c, m := range vbuf {
			if !plan.Valid(m) {
				return nil, fmt.Errorf("calib: record %d core %d: invalid mode %d", i, c, m)
			}
		}
		s.MeanBudgetW += rec.BudgetW

		pred.MatricesInto(&mx, current, samples)
		var predP, predI float64
		for c, m := range vbuf {
			predP += mx.Power[c][m]
			predI += mx.Instr[c][m]
		}
		if i+1 < len(t.Records) {
			truth := t.Records[i+1].TrueSamples(nil)
			if len(truth) != n {
				return nil, fmt.Errorf("calib: record %d true samples have %d cores, want %d", i+1, len(truth), n)
			}
			var actP, actI float64
			for _, ts := range truth {
				actP += ts.PowerW
				actI += ts.Instr
			}
			s.PredPowerW = append(s.PredPowerW, predP)
			s.ActualPowerW = append(s.ActualPowerW, actP)
			s.PredInstr = append(s.PredInstr, predI)
			s.ActualInstr = append(s.ActualInstr, actI)
		}
		current = append(current[:0], vbuf...)
	}
	s.MeanBudgetW /= float64(len(t.Records))

	var err error
	if s.Power, err = FitSeries(s.PredPowerW, s.ActualPowerW); err != nil {
		return nil, fmt.Errorf("calib: power fit: %w", err)
	}
	if s.Instr, err = FitSeries(s.PredInstr, s.ActualInstr); err != nil {
		return nil, fmt.Errorf("calib: instr fit: %w", err)
	}
	return s, nil
}

// CrossScore is the interval-by-interval agreement of two traces of the same
// management problem — typically cmpsim (approximation) against fullsim
// (ground truth).
type CrossScore struct {
	// Intervals is the number of paired records (the shorter trace bounds).
	Intervals int `json:"intervals"`
	// Power and Instr score the approx trace's per-interval true chip
	// telemetry against the truth trace's.
	Power Fit `json:"power"`
	Instr Fit `json:"instr"`
}

// CrossFit pairs the true per-interval chip power and committed instructions
// of two traces record-by-record and scores approx against truth.
func CrossFit(approx, truth *obs.Trace) (*CrossScore, error) {
	n := len(approx.Records)
	if len(truth.Records) < n {
		n = len(truth.Records)
	}
	if n == 0 {
		return nil, fmt.Errorf("calib: cross fit: a trace has no decision records")
	}
	chip := func(t *obs.Trace, i int) (p, in float64) {
		for _, s := range t.Records[i].TrueSamples(nil) {
			p += s.PowerW
			in += s.Instr
		}
		return p, in
	}
	aP := make([]float64, n)
	aI := make([]float64, n)
	bP := make([]float64, n)
	bI := make([]float64, n)
	for i := 0; i < n; i++ {
		aP[i], aI[i] = chip(approx, i)
		bP[i], bI[i] = chip(truth, i)
	}
	cs := &CrossScore{Intervals: n}
	var err error
	if cs.Power, err = FitSeries(aP, bP); err != nil {
		return nil, fmt.Errorf("calib: cross power fit: %w", err)
	}
	if cs.Instr, err = FitSeries(aI, bI); err != nil {
		return nil, fmt.Errorf("calib: cross instr fit: %w", err)
	}
	return cs, nil
}
