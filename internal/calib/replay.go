package calib

import (
	"fmt"
	"time"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/obs"
	"gpm/internal/solver"
)

// ReplayOptions configures one counterfactual replay of a recorded trace.
type ReplayOptions struct {
	// Plan is the DVFS mode plan the trace was recorded under.
	Plan modes.Plan
	// Predictor is the recording run's analytic predictor configuration. The
	// counterfactual manager predicts with it, and its §5.5 projection
	// (power scale law, transition derating) is what maps the recorded true
	// telemetry onto each lane's counterfactual vector when outcomes are
	// scored.
	Predictor core.Predictor
	// Policy is the counterfactual policy deciding on the recorded
	// telemetry. Replaying the recorded policy itself must yield exactly
	// zero regret versus the recorded lane at every interval (the identity
	// the package's tests pin).
	Policy core.Policy
	// Guard arms the resilient manager around Policy, mirroring
	// cmpsim.Options.Guard. Replays of guarded recordings must pass the
	// recording's guard config for the identity to hold.
	Guard *core.GuardConfig
	// History wraps the counterfactual predictor in a history-table phase
	// predictor (fresh per replay), mirroring cmpsim.Options.History.
	History *core.HistoryConfig
	// Oracle is the lookahead solver; nil selects the exact branch-and-bound
	// solver. Per interval it maximizes instructions subject to the recorded
	// budget over the interval's *realized* telemetry — prediction error
	// removed, which is exactly the §5.6 oracle the paper measures MaxBIPS
	// against.
	Oracle solver.Solver
	// MemBound is the per-core memory-boundedness ranking for policies that
	// consult it (§5.2.2); may be nil.
	MemBound []float64
}

// IntervalRegret is one interval's three-lane comparison. All lanes are
// scored on the interval's realized true telemetry, projected onto each
// lane's vector by the §5.5 model; Vs* follow the convention "positive = the
// counterfactual policy did worse".
type IntervalRegret struct {
	Interval int     `json:"i"`
	NowNs    int64   `json:"now_ns"`
	BudgetW  float64 `json:"budget_w"`
	// Per-lane realized committed instructions and chip power for the
	// vector each lane chose this interval.
	RecordedInstr  float64 `json:"rec_instr"`
	PolicyInstr    float64 `json:"pol_instr"`
	OracleInstr    float64 `json:"orc_instr"`
	RecordedPowerW float64 `json:"rec_w"`
	PolicyPowerW   float64 `json:"pol_w"`
	OraclePowerW   float64 `json:"orc_w"`
	// VsRecorded is RecordedInstr − PolicyInstr; VsOracle is
	// OracleInstr − PolicyInstr.
	VsRecorded float64 `json:"vs_recorded"`
	VsOracle   float64 `json:"vs_oracle"`
	// Matched reports the counterfactual vector equalled the recorded one.
	Matched bool `json:"matched,omitempty"`
}

// ReplayResult is one counterfactual policy's full replay.
type ReplayResult struct {
	// Policy is the counterfactual lane's display name; RecordedPolicy names
	// the lane it is measured against.
	Policy         string `json:"policy"`
	RecordedPolicy string `json:"recorded_policy"`
	// Intervals is the per-interval regret series: one entry per decision
	// whose outcome the trace recorded (records − 1; the final decision's
	// interval was never observed).
	Intervals []IntervalRegret `json:"intervals"`
	// Cumulative regrets over the whole trace.
	CumVsRecorded float64 `json:"cum_vs_recorded"`
	CumVsOracle   float64 `json:"cum_vs_oracle"`
	// RecordedVsOracle is Σ(OracleInstr − RecordedInstr): how many
	// instructions the *recorded* decisions left on the table versus the
	// perfect-prediction oracle — the prediction-error gap the paper
	// attributes MaxBIPS's oracle shortfall to.
	RecordedVsOracle float64 `json:"recorded_vs_oracle"`
	// Matches counts scored intervals where the counterfactual vector
	// equalled the recorded one.
	Matches int `json:"matches"`
}

// MatchRate is Matches / len(Intervals), in [0, 1].
func (r *ReplayResult) MatchRate() float64 {
	if len(r.Intervals) == 0 {
		return 0
	}
	return float64(r.Matches) / float64(len(r.Intervals))
}

// outcomeEval projects an interval's realized telemetry onto counterfactual
// mode vectors with the §5.5 model: normalize each core's true sample to
// Turbo under the vector that actually produced it, then scale to any lane's
// mode with the predictor's power law, derating instructions for the lane's
// own transition. This is the replay approximation: had a lane chosen
// differently, the chip cannot re-run, so the analytic projection stands in
// for the counterfactual physics.
type outcomeEval struct {
	p              core.Predictor
	pTurbo, iTurbo []float64
}

func (o *outcomeEval) scale(m modes.Mode) float64 {
	if o.p.PowerScale != nil {
		return o.p.PowerScale(m)
	}
	return o.p.Plan.PowerScale(m)
}

// set normalizes the realized samples to Turbo under the vector in force
// while they were observed.
func (o *outcomeEval) set(truth []core.Sample, inForce modes.Vector) {
	o.pTurbo = o.pTurbo[:0]
	o.iTurbo = o.iTurbo[:0]
	for c, s := range truth {
		o.pTurbo = append(o.pTurbo, s.PowerW/o.scale(inForce[c]))
		o.iTurbo = append(o.iTurbo, s.Instr/o.p.Plan.FreqScale(inForce[c]))
	}
}

// core projects core c's realized behavior onto mode m for a lane whose
// previous mode was prev, mirroring Predictor.MatricesInto's arithmetic.
func (o *outcomeEval) core(c int, m, prev modes.Mode) (powerW, instr float64) {
	powerW = o.pTurbo[c] * o.scale(m)
	instr = o.iTurbo[c] * o.p.Plan.FreqScale(m)
	if o.p.DerateTransitions && m != prev && o.p.ExploreSeconds > 0 {
		tr := o.p.Plan.TransitionTime(prev, m).Seconds()
		instr *= o.p.ExploreSeconds / (o.p.ExploreSeconds + tr)
	}
	return powerW, instr
}

// lane scores a whole vector.
func (o *outcomeEval) lane(v, prev modes.Vector) (powerW, instr float64) {
	for c, m := range v {
		p, in := o.core(c, m, prev[c])
		powerW += p
		instr += in
	}
	return powerW, instr
}

// matrices fills per-mode outcome matrices for the oracle solve, relative to
// the oracle lane's own previous vector.
func (o *outcomeEval) matrices(power, instr [][]float64, prev modes.Vector) {
	nm := o.p.Plan.NumModes()
	for c := range power {
		for m := 0; m < nm; m++ {
			power[c][m], instr[c][m] = o.core(c, modes.Mode(m), prev[c])
		}
	}
}

// Replay re-drives a recorded trace's telemetry through an alternate policy
// and reports per-interval and cumulative regret against the recorded
// decisions and against a perfect-prediction oracle.
//
// Three lanes advance in lockstep through the records:
//
//   - recorded: the trace's own vectors, verbatim;
//   - policy: a fresh manager (guarded when opt.Guard is set) fed exactly
//     what the recording manager was fed — the recorded budget, chip-level
//     measurement and observed (post-fault) samples;
//   - oracle: opt.Oracle maximizing instructions under the recorded budget
//     over the interval's *realized* telemetry (the next record's true
//     samples) — the decision a §5.6 perfect predictor would have made.
//
// Each decision is scored against the interval's realized true telemetry:
// normalized to Turbo under the recorded vector that produced it, projected
// onto each lane's chosen vector, with transition derating charged against
// the lane's own trajectory. The final decision's interval was never
// observed, so a trace of N records scores N−1 intervals. Replaying the
// trace's own policy/guard configuration reproduces the recorded vectors
// exactly and yields zero regret at every interval.
func Replay(t *obs.Trace, opt ReplayOptions) (*ReplayResult, error) {
	if len(t.Records) < 2 {
		return nil, fmt.Errorf("calib: replay: trace has %d decision records; need at least 2 to score outcomes", len(t.Records))
	}
	if opt.Policy == nil {
		return nil, fmt.Errorf("calib: replay: no counterfactual policy")
	}
	if opt.Plan.NumModes() == 0 {
		return nil, fmt.Errorf("calib: replay: no mode plan")
	}
	n := len(t.Records[0].Vector)
	if n == 0 {
		return nil, fmt.Errorf("calib: replay: trace records have empty mode vectors")
	}
	if opt.Guard != nil {
		if err := opt.Guard.Validate(); err != nil {
			return nil, fmt.Errorf("calib: replay: guard: %w", err)
		}
	}
	var pred core.MatrixPredictor = opt.Predictor
	if opt.History != nil {
		if err := opt.History.Validate(); err != nil {
			return nil, fmt.Errorf("calib: replay: history: %w", err)
		}
		pred = core.NewHistoryPredictor(opt.Predictor, *opt.History)
	}
	var decider interface {
		StepDecision(core.Decision) modes.Vector
	}
	if opt.Guard != nil {
		decider = core.NewResilientManagerWith(opt.Plan, opt.Policy, pred, n, *opt.Guard)
	} else {
		decider = core.NewManagerWith(opt.Plan, opt.Policy, pred, n)
	}
	oracle := opt.Oracle
	if oracle == nil {
		var err error
		oracle, err = solver.New("bb", solver.Options{})
		if err != nil {
			return nil, fmt.Errorf("calib: replay: %w", err)
		}
	}

	out := &ReplayResult{
		Policy:         opt.Policy.Name(),
		RecordedPolicy: t.PolicyName(),
		Intervals:      make([]IntervalRegret, 0, len(t.Records)-1),
	}

	// Per-lane mode trajectories; all three start at all-Turbo like the
	// engine loop does.
	recCur := modes.Uniform(n, modes.Turbo)
	polCur := modes.Uniform(n, modes.Turbo)
	orcCur := modes.Uniform(n, modes.Turbo)
	ev := outcomeEval{p: opt.Predictor}
	nm := opt.Plan.NumModes()
	orcPower := make([][]float64, n)
	orcInstr := make([][]float64, n)
	for c := range orcPower {
		orcPower[c] = make([]float64, nm)
		orcInstr[c] = make([]float64, nm)
	}
	var observed, truth []core.Sample
	var recV modes.Vector

	for i := range t.Records {
		rec := &t.Records[i]
		recV = rec.ModeVector(recV)
		if len(recV) != n {
			return nil, fmt.Errorf("calib: replay: record %d vector has %d cores, want %d", i, len(recV), n)
		}
		for c, m := range recV {
			if !opt.Plan.Valid(m) {
				return nil, fmt.Errorf("calib: replay: record %d core %d: invalid mode %d", i, c, m)
			}
		}
		observed = rec.ObservedSamples(observed)
		if len(observed) != n {
			return nil, fmt.Errorf("calib: replay: record %d has %d observed cores, want %d", i, len(observed), n)
		}

		// Counterfactual lane: identical inputs to the recording manager's
		// StepDecision (warm-start hints omitted; they never change results).
		polV := decider.StepDecision(core.Decision{
			BudgetW:    rec.BudgetW,
			ChipPowerW: rec.ChipPowerW,
			Samples:    observed,
			MemBound:   opt.MemBound,
			Now:        time.Duration(rec.NowNs),
		})

		if i+1 == len(t.Records) {
			break // final decision: its interval was never observed
		}
		truth = t.Records[i+1].TrueSamples(truth)
		if len(truth) != n {
			return nil, fmt.Errorf("calib: replay: record %d true samples have %d cores, want %d", i+1, len(truth), n)
		}
		// The realized telemetry was produced under the recorded vector.
		ev.set(truth, recV)

		// Oracle lane: solve on the realized interval from its own
		// trajectory — what perfect prediction would have chosen.
		ev.matrices(orcPower, orcInstr, orcCur)
		orcV, _ := oracle.Solve(solver.Instance{
			Plan:    opt.Plan,
			BudgetW: rec.BudgetW,
			Power:   orcPower,
			Instr:   orcInstr,
		})

		recW, recI := ev.lane(recV, recCur)
		polW, polI := ev.lane(polV, polCur)
		orcW, orcI := ev.lane(orcV, orcCur)

		ir := IntervalRegret{
			Interval:       rec.Interval,
			NowNs:          rec.NowNs,
			BudgetW:        rec.BudgetW,
			RecordedInstr:  recI,
			PolicyInstr:    polI,
			OracleInstr:    orcI,
			RecordedPowerW: recW,
			PolicyPowerW:   polW,
			OraclePowerW:   orcW,
			VsRecorded:     recI - polI,
			VsOracle:       orcI - polI,
			Matched:        polV.Equal(recV),
		}
		if ir.Matched {
			out.Matches++
		}
		out.CumVsRecorded += ir.VsRecorded
		out.CumVsOracle += ir.VsOracle
		out.RecordedVsOracle += orcI - recI
		out.Intervals = append(out.Intervals, ir)

		recCur = append(recCur[:0], recV...)
		polCur = append(polCur[:0], polV...)
		orcCur = append(orcCur[:0], orcV...)
	}
	return out, nil
}
