package calib

import (
	"math"
	"testing"

	"gpm/internal/core"
	"gpm/internal/modes"
	"gpm/internal/obs"
)

func planT(t testing.TB) modes.Plan {
	t.Helper()
	return modes.Default(1.0, 10)
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestFitSeries(t *testing.T) {
	f, err := FitSeries([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 3 || f.MAPE != 0 || f.Bias != 0 || !f.RDefined || !approxEq(f.R, 1) {
		t.Fatalf("perfect fit scored %+v", f)
	}

	// A constant predicted series has no defined correlation but valid MAPE.
	f, err = FitSeries([]float64{2, 2, 2}, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.RDefined {
		t.Fatalf("constant series reported a defined r: %+v", f)
	}
	if f.R != 0 {
		t.Fatalf("undefined r must be 0 for JSON stability, got %v", f.R)
	}

	if _, err = FitSeries(nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, err = FitSeries([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// scoreTrace builds a 1-core, 3-record trace with hand-checkable numbers.
func scoreTraceFixture() *obs.Trace {
	rec := func(i int, p, in float64) obs.Record {
		return obs.Record{Interval: i, NowNs: int64(i) * 500_000, BudgetW: 50,
			ChipPowerW: p, PowerW: []float64{p}, Instr: []float64{in}, Vector: []int{0}}
	}
	return &obs.Trace{
		Manifest: &obs.Manifest{Substrate: "cmpsim", Policy: "maxbips", ComboID: "fx"},
		Records:  []obs.Record{rec(0, 10, 1e6), rec(1, 12, 1.2e6), rec(2, 11, 0.9e6)},
	}
}

func TestScoreTraceLastValue(t *testing.T) {
	plan := planT(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	s, err := ScoreTrace(scoreTraceFixture(), plan, pred)
	if err != nil {
		t.Fatal(err)
	}
	if s.Substrate != "cmpsim" || s.Policy != "maxbips" || s.ComboID != "fx" {
		t.Fatalf("manifest identity lost: %+v", s)
	}
	if s.Intervals != 2 || s.MeanBudgetW != 50 {
		t.Fatalf("intervals=%d meanBudget=%v", s.Intervals, s.MeanBudgetW)
	}
	// All-Turbo throughout: the last-value predictor forecasts exactly the
	// observed telemetry, paired with the next record's.
	wantPredP := []float64{10, 12}
	wantActP := []float64{12, 11}
	for i := range wantPredP {
		if !approxEq(s.PredPowerW[i], wantPredP[i]) || !approxEq(s.ActualPowerW[i], wantActP[i]) {
			t.Fatalf("power pair %d: pred %v actual %v, want %v/%v",
				i, s.PredPowerW[i], s.ActualPowerW[i], wantPredP[i], wantActP[i])
		}
	}
	wantMAPE := (2.0/12 + 1.0/11) / 2
	if !approxEq(s.Power.MAPE, wantMAPE) {
		t.Fatalf("power MAPE %v, want %v", s.Power.MAPE, wantMAPE)
	}
	if !approxEq(s.Power.Bias, -0.5) {
		t.Fatalf("power bias %v, want -0.5", s.Power.Bias)
	}
}

func TestScoreTraceUsesTrueTelemetryAsActual(t *testing.T) {
	plan := planT(t)
	tr := scoreTraceFixture()
	// A fault stage lied at record 1: the manager saw 12 W but the substrate
	// really drew 13 W. Predictions keep consuming the observed series; the
	// actual series must switch to the truth.
	tr.Records[1].TruePowerW = []float64{13}
	tr.Records[1].TrueInstr = []float64{1.3e6}
	s, err := ScoreTrace(tr, plan, core.Predictor{Plan: plan, ExploreSeconds: 500e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s.ActualPowerW[0], 13) {
		t.Fatalf("actual power %v, want the true 13", s.ActualPowerW[0])
	}
	if !approxEq(s.PredPowerW[1], 12) {
		t.Fatalf("prediction from record 1 %v, want the observed 12", s.PredPowerW[1])
	}
}

func TestScoreTraceRejectsMalformedTraces(t *testing.T) {
	plan := planT(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	short := &obs.Trace{Records: scoreTraceFixture().Records[:1]}
	if _, err := ScoreTrace(short, plan, pred); err == nil {
		t.Error("single-record trace accepted")
	}
	ragged := scoreTraceFixture()
	ragged.Records[1].PowerW = []float64{1, 2}
	ragged.Records[1].Instr = []float64{1, 2}
	if _, err := ScoreTrace(ragged, plan, pred); err == nil {
		t.Error("ragged core count accepted")
	}
	badMode := scoreTraceFixture()
	badMode.Records[2].Vector = []int{99}
	if _, err := ScoreTrace(badMode, plan, pred); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestCrossFit(t *testing.T) {
	a := scoreTraceFixture()
	b := scoreTraceFixture()
	cs, err := CrossFit(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Intervals != 3 || cs.Power.MAPE != 0 || cs.Instr.MAPE != 0 {
		t.Fatalf("identical traces scored %+v", cs)
	}
	// Truth overrides must flow into the comparison.
	b.Records[0].TruePowerW = []float64{20}
	b.Records[0].TrueInstr = []float64{2e6}
	cs, err = CrossFit(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Power.MAPE == 0 {
		t.Fatal("true-telemetry divergence invisible to CrossFit")
	}
	if _, err := CrossFit(&obs.Trace{}, b); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReplayValidation(t *testing.T) {
	plan := planT(t)
	tr := scoreTraceFixture()
	base := ReplayOptions{Plan: plan, Predictor: core.Predictor{Plan: plan, ExploreSeconds: 500e-6}, Policy: core.MaxBIPS{}}
	if _, err := Replay(&obs.Trace{}, base); err == nil {
		t.Error("empty trace accepted")
	}
	noPolicy := base
	noPolicy.Policy = nil
	if _, err := Replay(tr, noPolicy); err == nil {
		t.Error("missing policy accepted")
	}
	badHist := base
	badHist.History = &core.HistoryConfig{Depth: 99}
	if _, err := Replay(tr, badHist); err == nil {
		t.Error("invalid history config accepted")
	}
}

// TestReplaySyntheticLanes replays the fixture under MaxBIPS and checks the
// lane accounting: per-interval sums match cumulative totals, the oracle lane
// (exact solve on true telemetry) never trails the policy lane's first
// interval (identical all-Turbo state, same matrices), and the fingerprint is
// reproducible.
func TestReplaySyntheticLanes(t *testing.T) {
	plan := planT(t)
	tr := scoreTraceFixture()
	opt := ReplayOptions{
		Plan:      plan,
		Predictor: core.Predictor{Plan: plan, ExploreSeconds: 500e-6},
		Policy:    core.MaxBIPS{},
	}
	rr, err := Replay(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Intervals) != 2 {
		t.Fatalf("%d intervals, want records-1 = 2", len(rr.Intervals))
	}
	var sumRec, sumOrc float64
	for _, ir := range rr.Intervals {
		if ir.VsRecorded != ir.RecordedInstr-ir.PolicyInstr || ir.VsOracle != ir.OracleInstr-ir.PolicyInstr {
			t.Fatalf("interval %d: regret fields inconsistent: %+v", ir.Interval, ir)
		}
		sumRec += ir.VsRecorded
		sumOrc += ir.VsOracle
	}
	if !approxEq(rr.CumVsRecorded, sumRec) || !approxEq(rr.CumVsOracle, sumOrc) {
		t.Fatalf("cumulative totals drifted from the interval series: %+v", rr)
	}
	// Interval 0: every lane decides from the same all-Turbo state on the
	// same matrices, so the exact oracle bounds both from above.
	ir0 := rr.Intervals[0]
	if ir0.OracleInstr < ir0.PolicyInstr-1e-9 || ir0.OracleInstr < ir0.RecordedInstr-1e-9 {
		t.Fatalf("interval 0: oracle %v below policy %v / recorded %v", ir0.OracleInstr, ir0.PolicyInstr, ir0.RecordedInstr)
	}
	rr2, err := Replay(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ReplayFingerprint(rr) != ReplayFingerprint(rr2) {
		t.Fatal("replay fingerprint not reproducible on identical input")
	}
}

func TestFingerprintsDiscriminate(t *testing.T) {
	plan := planT(t)
	pred := core.Predictor{Plan: plan, ExploreSeconds: 500e-6}
	s1, err := ScoreTrace(scoreTraceFixture(), plan, pred)
	if err != nil {
		t.Fatal(err)
	}
	mut := scoreTraceFixture()
	mut.Records[2].PowerW[0] += 1e-9
	s2, err := ScoreTrace(mut, plan, pred)
	if err != nil {
		t.Fatal(err)
	}
	if ScoreFingerprint(s1) == ScoreFingerprint(s2) {
		t.Fatal("a 1e-9 telemetry change did not move the score fingerprint")
	}
	if ScoreFingerprint(s1) != ScoreFingerprint(s1) {
		t.Fatal("score fingerprint unstable")
	}
}
