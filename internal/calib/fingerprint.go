package calib

import (
	"hash"
	"hash/fnv"
	"math"
)

// fpWriter mirrors internal/obs's FNV-64a float-bits hashing so the calib
// golden fingerprints use the same primitive as the engine's.
type fpWriter struct{ h hash.Hash64 }

func newFPWriter() fpWriter { return fpWriter{h: fnv.New64a()} }

func (w fpWriter) f(f float64) {
	var b [8]byte
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	w.h.Write(b[:])
}

func (w fpWriter) s(s string) {
	w.h.Write([]byte(s))
	w.h.Write([]byte{0})
}

func (w fpWriter) sum() uint64 { return w.h.Sum64() }

func (w fpWriter) fit(f Fit) {
	w.f(float64(f.N))
	w.f(f.MAPE)
	w.f(f.Bias)
	w.f(f.R)
	if f.RDefined {
		w.f(1)
	} else {
		w.f(0)
	}
}

// ScoreFingerprint hashes every numeric series and fit statistic of a
// calibration Score bit-exactly, so any drift in the predictor, the trace
// schema, or the scoring pairing changes the hash.
func ScoreFingerprint(s *Score) uint64 {
	w := newFPWriter()
	w.s(s.Substrate)
	w.s(s.Policy)
	w.s(s.ComboID)
	w.f(s.MeanBudgetW)
	w.f(float64(s.Intervals))
	w.fit(s.Power)
	w.fit(s.Instr)
	for i := range s.PredPowerW {
		w.f(s.PredPowerW[i])
		w.f(s.ActualPowerW[i])
		w.f(s.PredInstr[i])
		w.f(s.ActualInstr[i])
	}
	return w.sum()
}

// ReplayFingerprint hashes a counterfactual replay's full per-interval regret
// series and cumulative totals bit-exactly.
func ReplayFingerprint(r *ReplayResult) uint64 {
	w := newFPWriter()
	w.s(r.Policy)
	w.s(r.RecordedPolicy)
	for i := range r.Intervals {
		ir := &r.Intervals[i]
		w.f(float64(ir.Interval))
		w.f(float64(ir.NowNs))
		w.f(ir.BudgetW)
		w.f(ir.RecordedInstr)
		w.f(ir.PolicyInstr)
		w.f(ir.OracleInstr)
		w.f(ir.RecordedPowerW)
		w.f(ir.PolicyPowerW)
		w.f(ir.OraclePowerW)
		w.f(ir.VsRecorded)
		w.f(ir.VsOracle)
		if ir.Matched {
			w.f(1)
		} else {
			w.f(0)
		}
	}
	w.f(r.CumVsRecorded)
	w.f(r.CumVsOracle)
	w.f(r.RecordedVsOracle)
	w.f(float64(r.Matches))
	return w.sum()
}
