package trace

import (
	"math"
	"testing"
	"testing/quick"

	"gpm/internal/modes"
)

func playerFor(t testing.TB, bench string) *Player {
	t.Helper()
	pr, err := testLibrary(t).Profile(bench)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlayer(pr)
}

// Property: advancing in two steps equals advancing once — energy,
// instructions and final position all agree (the cmpsim delta loop depends
// on this).
func TestPlayerAdvanceAdditivity(t *testing.T) {
	pr, err := testLibrary(t).Profile("ammp")
	if err != nil {
		t.Fatal(err)
	}
	f := func(modeRaw uint8, aRaw, bRaw uint16) bool {
		m := modes.Mode(int(modeRaw) % 3)
		a := float64(aRaw%2000+1) * 1e-6 // 1µs..2ms
		b := float64(bRaw%2000+1) * 1e-6
		p1 := NewPlayer(pr)
		e1a, i1a := p1.Advance(m, a)
		e1b, i1b := p1.Advance(m, b)
		p2 := NewPlayer(pr)
		e2, i2 := p2.Advance(m, a+b)
		tol := 1e-9 + (e2+i2)*1e-9
		return math.Abs((e1a+e1b)-e2) < 1e-6+tol &&
			math.Abs((i1a+i1b)-i2) < 1+tol &&
			math.Abs(p1.Position()-p2.Position()) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Peek never moves the player and equals the subsequent Advance.
func TestPlayerPeekIdempotent(t *testing.T) {
	p := playerFor(t, "crafty")
	p.Advance(modes.Eff1, 1e-3) // somewhere mid-program
	for _, m := range []modes.Mode{modes.Turbo, modes.Eff1, modes.Eff2} {
		pos := p.Position()
		e1, i1 := p.Peek(m, 500e-6)
		e2, i2 := p.Peek(m, 500e-6)
		if p.Position() != pos {
			t.Fatal("Peek moved the player")
		}
		if e1 != e2 || i1 != i2 {
			t.Fatal("Peek not deterministic")
		}
		e3, i3 := p.Clone().Advance(m, 500e-6)
		if e1 != e3 || i1 != i3 {
			t.Fatal("Peek disagrees with Advance")
		}
	}
}

// Property: slower modes never commit more instructions over the same wall
// time, and never consume more energy.
func TestPlayerModeMonotonicity(t *testing.T) {
	for _, bench := range []string{"sixtrack", "mcf", "gcc"} {
		p := playerFor(t, bench)
		p.Advance(modes.Turbo, 2e-3)
		var prevI, prevE float64 = math.Inf(1), math.Inf(1)
		for m := 0; m < 3; m++ {
			e, in := p.Peek(modes.Mode(m), 500e-6)
			if in > prevI*1.0001 {
				t.Errorf("%s: mode %d commits more (%.0f) than mode %d (%.0f)", bench, m, in, m-1, prevI)
			}
			if e > prevE*1.0001 {
				t.Errorf("%s: mode %d consumes more energy than mode %d", bench, m, m-1)
			}
			prevI, prevE = in, e
		}
	}
}

func TestPlayerCompletion(t *testing.T) {
	pr, err := testLibrary(t).Profile("mcf")
	if err != nil {
		t.Fatal(err)
	}
	// A shortened copy completes quickly.
	short := *pr
	short.Spec.TotalInstructions = 200_000
	p := NewPlayer(&short)
	var total float64
	for i := 0; i < 10_000 && !p.Completed(); i++ {
		_, in := p.Advance(modes.Turbo, 50e-6)
		total += in
	}
	if !p.Completed() {
		t.Fatal("player never completed")
	}
	if total < 190_000 || total > 210_000 {
		t.Errorf("committed %.0f before completion, want ≈200k", total)
	}
	// Once completed, Advance is a no-op.
	e, in := p.Advance(modes.Turbo, 1e-3)
	if e != 0 || in != 0 {
		t.Error("completed player still produced work")
	}
}

func TestPlayerPhaseProgression(t *testing.T) {
	p := playerFor(t, "gcc") // three phases
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Phase()] = true
		p.Advance(modes.Turbo, 50e-6)
	}
	if len(seen) < 3 {
		t.Errorf("player visited %d phases over 10ms, want all 3", len(seen))
	}
}

func TestPlayerInvalidModePanics(t *testing.T) {
	p := playerFor(t, "gcc")
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	p.Advance(modes.Mode(9), 1e-3)
}
