package trace

import (
	"testing"

	"gpm/internal/config"
	"gpm/internal/modes"
	"gpm/internal/power"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lib := testLibrary(t)
	pr, err := lib.Profile("crafty")
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(lib.Config(), lib.Model(), pr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(lib.Config(), lib.Model(), lib.Plan(), "crafty", data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != pr.Spec.Name || got.PeriodInstr != pr.PeriodInstr {
		t.Error("round trip lost profile identity")
	}
	for m := range pr.Behavior {
		for ph := range pr.Behavior[m] {
			if got.Behavior[m][ph] != pr.Behavior[m][ph] {
				t.Fatalf("behavior [%d][%d] changed in round trip", m, ph)
			}
		}
	}
}

func TestDecodeRejectsWrongInputs(t *testing.T) {
	lib := testLibrary(t)
	pr, err := lib.Profile("crafty")
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(lib.Config(), lib.Model(), pr)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong benchmark name.
	if _, err := Decode(lib.Config(), lib.Model(), lib.Plan(), "mcf", data); err == nil {
		t.Error("decode accepted a mismatched benchmark")
	}
	// Changed configuration invalidates the fingerprint.
	cfg := lib.Config()
	cfg.Sim.SampleInstructions *= 2
	if _, err := Decode(cfg, lib.Model(), lib.Plan(), "crafty", data); err == nil {
		t.Error("decode accepted a stale configuration")
	}
	// Garbage bytes.
	if _, err := Decode(lib.Config(), lib.Model(), lib.Plan(), "crafty", []byte("junk")); err == nil {
		t.Error("decode accepted garbage")
	}
}

func TestDiskCacheHitAvoidsRecharacterization(t *testing.T) {
	dir := t.TempDir()
	cfg := config.Default(4)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)

	lib1 := NewLibrary(cfg, power.Default(), plan).WithDiskCache(dir)
	pr1, err := lib1.Profile("mcf")
	if err != nil {
		t.Fatal(err)
	}

	// A fresh library with the same cache dir must load the same profile.
	lib2 := NewLibrary(cfg, power.Default(), plan).WithDiskCache(dir)
	pr2, err := lib2.Profile("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if pr1.PeriodInstr != pr2.PeriodInstr {
		t.Error("disk-cached profile differs from the original")
	}
	for m := range pr1.Behavior {
		for ph := range pr1.Behavior[m] {
			if pr1.Behavior[m][ph].PowerW != pr2.Behavior[m][ph].PowerW {
				t.Fatal("cached behavior diverged")
			}
		}
	}
}

func TestDiskCacheStaleEntryRecharacterizes(t *testing.T) {
	dir := t.TempDir()
	cfg := config.Default(4)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	lib1 := NewLibrary(cfg, power.Default(), plan).WithDiskCache(dir)
	if _, err := lib1.Profile("art"); err != nil {
		t.Fatal(err)
	}

	// Same dir, different sampling config: the stale entry must be ignored
	// and replaced, not returned.
	cfg2 := cfg
	cfg2.Sim.SampleInstructions = cfg.Sim.SampleInstructions / 2
	lib2 := NewLibrary(cfg2, power.Default(), plan).WithDiskCache(dir)
	pr, err := lib2.Profile("art")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Spec.Name != "art" {
		t.Fatal("unexpected profile")
	}
	// And the new entry must now satisfy the new fingerprint.
	lib3 := NewLibrary(cfg2, power.Default(), plan).WithDiskCache(dir)
	if _, err := lib3.Profile("art"); err != nil {
		t.Fatal(err)
	}
}
