// Package trace implements the paper's trace-based methodology (§3.1): the
// core simulator characterizes each benchmark once per power mode
// ("single threaded Turandot results for each evaluated power mode"), and
// lightweight Players replay those characterizations inside the CMP
// simulation, tracking each core's program position so that mode switches
// mid-run resume the correct phase behaviour.
//
// Behaviour is indexed by *program position* (committed instructions), not
// wall time: a core slowed to Eff2 moves through its phases more slowly, and
// two cores running the same benchmark in different modes diverge — exactly
// the property the explore-time re-evaluation in the paper depends on.
// Deterministic per-position jitter models the residual interval-to-interval
// variation ("unprecedented application behavior changes", §5.5) that forces
// the manager to correct occasional overshoots.
package trace

import (
	"fmt"
	"sync"

	"gpm/internal/bpred"
	"gpm/internal/cache"
	"gpm/internal/config"
	"gpm/internal/modes"
	"gpm/internal/power"
	"gpm/internal/uarch"
	"gpm/internal/workload"
)

// jitterChunk is the program-position granularity (instructions) at which
// the jitter factors change; roughly one delta-sim interval of progress.
const jitterChunk = 75_000

// rate/power jitter amplitudes (fractional). The power amplitude also sets
// the chip's peak-to-average gap (§1 motivates global management with that
// gap): per-core peaks reach ≈6% above the phase mean, so the worst-case
// envelope budgets are expressed against sits usefully above average power.
const (
	rateJitterAmp  = 0.06
	powerJitterAmp = 0.06
)

// PhaseBehavior is the measured behaviour of one benchmark phase in one mode.
type PhaseBehavior struct {
	// PowerW is the core power in watts.
	PowerW float64
	// IPC is committed instructions per core cycle.
	IPC float64
	// RatePerSec is committed instructions per wall-clock second.
	RatePerSec float64
	// Activity retains the raw utilization snapshot for reports.
	Activity power.Activity
}

// Profile is a benchmark characterized under every mode of a plan.
type Profile struct {
	Spec workload.Spec
	Plan modes.Plan
	// Behavior[mode][phase].
	Behavior [][]PhaseBehavior
	// PhaseInstr[p] is the instruction length of phase p in one pass of the
	// schedule; PeriodInstr is their sum.
	PhaseInstr  []float64
	PeriodInstr float64
	// Seed is the workload-generation seed used.
	Seed int64
}

// Characterize runs the core simulator for every (phase, mode) pair of spec
// and assembles a Profile. Each sample uses a fresh core, private caches and
// predictor — the single-threaded characterization step of §3.1.
func Characterize(cfg config.Config, model power.Model, plan modes.Plan, spec workload.Spec) (*Profile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	pr := &Profile{
		Spec: spec,
		Plan: plan,
		Seed: cfg.Sim.Seed,
	}
	nm := plan.NumModes()
	pr.Behavior = make([][]PhaseBehavior, nm)
	for m := 0; m < nm; m++ {
		pr.Behavior[m] = make([]PhaseBehavior, len(spec.Phases))
		for ph := range spec.Phases {
			gen := workload.NewGenerator(spec, ph, cfg.Sim.Seed)
			l2 := cache.NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
			hier := cache.NewHierarchy(cfg.Mem, l2)
			pred := bpred.New(cfg.Core.BimodalEntries, cfg.Core.GshareEntries, cfg.Core.SelectorEntries, cfg.Core.GshareHistory)
			core := uarch.New(cfg, gen, hier, pred)
			f := plan.FreqScale(modes.Mode(m))
			core.SetFreqScale(f)
			// Establish steady-state cache residency before sampling: touch
			// the benchmark's data regions once, as a real run would have
			// long before the sampled window. Regions larger than the
			// hierarchy stay miss-dominated regardless.
			warmRegion(hier, workload.HotBase, spec.HotSetBytes, cfg.Mem.L1D.BlockSize)
			warmRegion(hier, workload.ColdBase, spec.ColdSetBytes, cfg.Mem.L1D.BlockSize)
			warmCode(hier, workload.CodeBase, spec.CodeFootprint, cfg.Mem.L1I.BlockSize)
			act := core.Measure(uint64(cfg.Sim.WarmupInstructions), uint64(cfg.Sim.SampleInstructions))
			b := PhaseBehavior{
				PowerW:     model.CorePower(act, plan, modes.Mode(m)),
				IPC:        act.IPC(),
				RatePerSec: act.IPC() * f * cfg.Chip.NominalFreqHz,
				Activity:   act,
			}
			if b.RatePerSec <= 0 {
				return nil, fmt.Errorf("trace: %s phase %d mode %d measured zero rate", spec.Name, ph, m)
			}
			pr.Behavior[m][ph] = b
		}
	}
	// Phase instruction lengths from the Turbo rates: the schedule's
	// PhasePeriodUs is defined as Turbo wall time.
	pr.PhaseInstr = make([]float64, len(spec.Phases))
	var wsum float64
	for _, p := range spec.Phases {
		wsum += p.Weight
	}
	for i, p := range spec.Phases {
		sec := float64(spec.PhasePeriodUs) * 1e-6 * p.Weight / wsum
		pr.PhaseInstr[i] = sec * pr.Behavior[0][i].RatePerSec
		pr.PeriodInstr += pr.PhaseInstr[i]
	}
	return pr, nil
}

// warmRegion touches every data block of [base, base+size) once.
func warmRegion(h *cache.Hierarchy, base uint64, size, block int) {
	for off := 0; off < size; off += block {
		h.DataAccess(base + uint64(off))
	}
}

// warmCode touches every instruction block of the code footprint once, so
// the sampled window is free of the compulsory-miss tail that random body
// placement would otherwise spread over the first ~100k instructions.
func warmCode(h *cache.Hierarchy, base uint64, size, block int) {
	for off := 0; off < size; off += block {
		h.InstrFetch(base + uint64(off))
	}
}

// phaseAt maps a program position (instructions, within one schedule period)
// to a phase index.
func (pr *Profile) phaseAt(posInPeriod float64) int {
	var acc float64
	for i, l := range pr.PhaseInstr {
		acc += l
		if posInPeriod < acc {
			return i
		}
	}
	return len(pr.PhaseInstr) - 1
}

// WholeProgram returns the average power and the execution time of one full
// schedule period under mode m (no jitter): the quantities behind Fig 2.
func (pr *Profile) WholeProgram(m modes.Mode) (avgPowerW, periodSeconds float64) {
	var energy, t float64
	for i := range pr.PhaseInstr {
		b := pr.Behavior[m][i]
		dt := pr.PhaseInstr[i] / b.RatePerSec
		energy += b.PowerW * dt
		t += dt
	}
	return energy / t, t
}

// jitter returns deterministic multiplicative factors for the given program
// chunk; identical across modes at the same position so that mode prediction
// sees correlated behaviour (§5.5).
func (pr *Profile) jitter(chunk uint64) (rate, pw float64) {
	h := chunk*0x9e3779b97f4a7c15 ^ uint64(pr.Seed)
	// Avalanche mix with the benchmark name folded in.
	for _, ch := range pr.Spec.Name {
		h = (h ^ uint64(ch)) * 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	u1 := float64(h&0xffff)/65535.0*2 - 1       // [-1,1]
	u2 := float64((h>>16)&0xffff)/65535.0*2 - 1 // [-1,1]
	return 1 + rateJitterAmp*u1, 1 + powerJitterAmp*u2
}

// Player replays a profile; it is a small value type and may be copied to
// obtain an independent lookahead cursor (oracle policies rely on this).
type Player struct {
	pr  *Profile
	pos float64 // program position in instructions
	end bool
}

// NewPlayer returns a player positioned at the start of the program.
func NewPlayer(pr *Profile) *Player { return &Player{pr: pr} }

// Clone returns an independent copy (same position).
func (p *Player) Clone() *Player {
	c := *p
	return &c
}

// Position returns the committed-instruction position.
func (p *Player) Position() float64 { return p.pos }

// Completed reports whether the program has reached its TotalInstructions.
func (p *Player) Completed() bool { return p.end }

// Phase returns the index of the phase at the current position.
func (p *Player) Phase() int {
	period := p.pr.PeriodInstr
	pos := p.pos - float64(uint64(p.pos/period))*period
	return p.pr.phaseAt(pos)
}

// Behavior returns the (jittered) instantaneous power and rate at the
// current position under mode m.
func (p *Player) Behavior(m modes.Mode) (powerW, ratePerSec float64) {
	period := p.pr.PeriodInstr
	pos := p.pos - float64(uint64(p.pos/period))*period
	b := p.pr.Behavior[m][p.pr.phaseAt(pos)]
	rj, pj := p.pr.jitter(uint64(p.pos / jitterChunk))
	return b.PowerW * pj, b.RatePerSec * rj
}

// Advance runs the player for `seconds` of wall time under mode m and
// returns the energy consumed (joules) and instructions committed. When the
// program completes mid-interval the player idles for the remainder at the
// mode's gated floor power (zero here: the core is considered released).
func (p *Player) Advance(m modes.Mode, seconds float64) (energyJ, instr float64) {
	if !p.pr.Plan.Valid(m) {
		panic(fmt.Sprintf("trace: invalid mode %d", m))
	}
	remaining := seconds
	for remaining > 1e-15 && !p.end {
		period := p.pr.PeriodInstr
		posInPeriod := p.pos - float64(uint64(p.pos/period))*period
		ph := p.pr.phaseAt(posInPeriod)
		b := p.pr.Behavior[m][ph]
		rj, pj := p.pr.jitter(uint64(p.pos / jitterChunk))
		rate := b.RatePerSec * rj
		pw := b.PowerW * pj

		// Distance to the nearest behaviour boundary: phase edge, jitter
		// chunk edge, or program completion.
		var acc float64
		for i := 0; i <= ph; i++ {
			acc += p.pr.PhaseInstr[i]
		}
		toPhase := acc - posInPeriod
		toChunk := (float64(uint64(p.pos/jitterChunk))+1)*jitterChunk - p.pos
		toEnd := float64(p.pr.Spec.TotalInstructions) - p.pos
		dist := toPhase
		if toChunk < dist {
			dist = toChunk
		}
		if toEnd < dist {
			dist = toEnd
		}
		// A minimum step of one instruction guarantees progress: at program
		// positions around 1e8 a fractional boundary remainder can be below
		// one ulp and would otherwise never be consumed.
		if dist < 1 {
			dist = 1
		}
		dt := dist / rate
		if dt > remaining {
			dt = remaining
		}
		energyJ += pw * dt
		instr += rate * dt
		p.pos += rate * dt
		remaining -= dt
		if p.pos >= float64(p.pr.Spec.TotalInstructions) {
			p.end = true
		}
	}
	return energyJ, instr
}

// Peek returns the energy and instructions a hypothetical interval of
// `seconds` under mode m would produce, without moving the player. Oracle
// policies use this as their future knowledge (§5.6).
func (p *Player) Peek(m modes.Mode, seconds float64) (energyJ, instr float64) {
	c := p.Clone()
	return c.Advance(m, seconds)
}

// Library memoizes benchmark profiles for a fixed (config, model, plan)
// tuple. Safe for concurrent use.
type Library struct {
	cfg   config.Config
	model power.Model
	plan  modes.Plan

	mu       sync.Mutex
	profiles map[string]*Profile
	disk     *DiskCache
}

// NewLibrary builds an empty profile cache.
func NewLibrary(cfg config.Config, model power.Model, plan modes.Plan) *Library {
	return &Library{cfg: cfg, model: model, plan: plan, profiles: make(map[string]*Profile)}
}

// Plan returns the library's mode plan.
func (l *Library) Plan() modes.Plan { return l.plan }

// Config returns the library's configuration.
func (l *Library) Config() config.Config { return l.cfg }

// Model returns the library's power model.
func (l *Library) Model() power.Model { return l.model }

// Profile returns the (cached) profile for the named benchmark.
func (l *Library) Profile(name string) (*Profile, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if pr, ok := l.profiles[name]; ok {
		return pr, nil
	}
	if l.disk != nil {
		pr, err := l.disk.Load(l.cfg, l.model, l.plan, name)
		if err != nil {
			return nil, err
		}
		if pr != nil {
			l.profiles[name] = pr
			return pr, nil
		}
	}
	spec, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	pr, err := Characterize(l.cfg, l.model, l.plan, spec)
	if err != nil {
		return nil, err
	}
	if l.disk != nil {
		if err := l.disk.Store(l.cfg, l.model, pr); err != nil {
			return nil, fmt.Errorf("trace: persisting %s: %w", name, err)
		}
	}
	l.profiles[name] = pr
	return pr, nil
}

// Players builds fresh players for a benchmark combination.
func (l *Library) Players(combo workload.Combo) ([]*Player, error) {
	out := make([]*Player, combo.Cores())
	for i, name := range combo.Benchmarks {
		pr, err := l.Profile(name)
		if err != nil {
			return nil, err
		}
		out[i] = NewPlayer(pr)
	}
	return out, nil
}
