package trace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"gpm/internal/config"
	"gpm/internal/modes"
	"gpm/internal/power"
)

// profileBlob is the on-disk representation of a Profile. The workload spec
// and plan are stored by value so a loaded profile is self-describing; a
// fingerprint of the generating configuration guards against stale caches.
type profileBlob struct {
	Version     int
	Fingerprint uint64
	Profile     Profile
}

// blobVersion bumps whenever the characterization pipeline changes meaning.
const blobVersion = 1

// fingerprint hashes every input that affects characterization output.
func fingerprint(cfg config.Config, model power.Model, plan modes.Plan, benchmark string) uint64 {
	h := fnv.New64a()
	enc := gob.NewEncoder(h)
	// Encoding errors cannot occur for these plain structs; a failure here
	// means the types became unencodable, which tests catch.
	_ = enc.Encode(cfg)
	_ = enc.Encode(model)
	_ = enc.Encode(plan)
	_ = enc.Encode(benchmark)
	return h.Sum64()
}

// Encode serializes a profile for storage.
func Encode(cfg config.Config, model power.Model, pr *Profile) ([]byte, error) {
	blob := profileBlob{
		Version:     blobVersion,
		Fingerprint: fingerprint(cfg, model, pr.Plan, pr.Spec.Name),
		Profile:     *pr,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("trace: encode %s: %w", pr.Spec.Name, err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a profile, validating the version and the fingerprint
// against the supplied configuration.
func Decode(cfg config.Config, model power.Model, plan modes.Plan, benchmark string, data []byte) (*Profile, error) {
	var blob profileBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("trace: decode %s: %w", benchmark, err)
	}
	if blob.Version != blobVersion {
		return nil, fmt.Errorf("trace: %s: blob version %d, want %d", benchmark, blob.Version, blobVersion)
	}
	if want := fingerprint(cfg, model, plan, benchmark); blob.Fingerprint != want {
		return nil, fmt.Errorf("trace: %s: characterization inputs changed since the profile was saved", benchmark)
	}
	if blob.Profile.Spec.Name != benchmark {
		return nil, fmt.Errorf("trace: blob holds %q, want %q", blob.Profile.Spec.Name, benchmark)
	}
	return &blob.Profile, nil
}

// DiskCache adds a persistent layer under a Library: profiles are loaded
// from dir when fingerprints match and written back after characterization.
type DiskCache struct {
	Dir string
}

func (d DiskCache) path(benchmark string) string {
	return filepath.Join(d.Dir, benchmark+".profile")
}

// Load retrieves a cached profile; a nil profile with nil error means a
// clean cache miss.
func (d DiskCache) Load(cfg config.Config, model power.Model, plan modes.Plan, benchmark string) (*Profile, error) {
	data, err := os.ReadFile(d.path(benchmark))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	pr, err := Decode(cfg, model, plan, benchmark, data)
	if err != nil {
		// A stale or corrupt entry is a miss, not a failure: the caller
		// re-characterizes and overwrites it.
		return nil, nil
	}
	return pr, nil
}

// Store persists a profile.
func (d DiskCache) Store(cfg config.Config, model power.Model, pr *Profile) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return err
	}
	data, err := Encode(cfg, model, pr)
	if err != nil {
		return err
	}
	return os.WriteFile(d.path(pr.Spec.Name), data, 0o644)
}

// WithDiskCache attaches a persistent profile cache to the library; returns
// the library for chaining.
func (l *Library) WithDiskCache(dir string) *Library {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disk = &DiskCache{Dir: dir}
	return l
}
