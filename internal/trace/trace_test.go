package trace

import (
	"math"
	"testing"

	"gpm/internal/config"
	"gpm/internal/modes"
	"gpm/internal/power"
	"gpm/internal/workload"
)

func testLibrary(t testing.TB) *Library {
	t.Helper()
	cfg := config.Default(4)
	plan := modes.Default(cfg.Chip.NominalVdd, cfg.Chip.TransitionRateVPerUs)
	return NewLibrary(cfg, power.Default(), plan)
}

func TestCharacterizeAllBenchmarks(t *testing.T) {
	lib := testLibrary(t)
	for _, name := range workload.Names() {
		pr, err := lib.Profile(name)
		if err != nil {
			t.Fatalf("Profile(%s): %v", name, err)
		}
		if len(pr.Behavior) != 3 {
			t.Fatalf("%s: got %d modes, want 3", name, len(pr.Behavior))
		}
		for m := range pr.Behavior {
			for ph, b := range pr.Behavior[m] {
				if b.IPC <= 0 || b.IPC > float64(lib.Config().Core.DispatchWidth) {
					t.Errorf("%s mode %d phase %d: IPC %v out of range", name, m, ph, b.IPC)
				}
				if b.PowerW <= 0 {
					t.Errorf("%s mode %d phase %d: power %v not positive", name, m, ph, b.PowerW)
				}
			}
		}
		turboP, turboT := pr.WholeProgram(modes.Turbo)
		eff2P, eff2T := pr.WholeProgram(modes.Eff2)
		t.Logf("%-9s turbo: %5.1f W, eff2 savings %5.1f%%, eff2 perf degradation %5.1f%%  (turbo IPC %4.2f)",
			name, turboP, 100*(1-eff2P/turboP), 100*(1-turboT/eff2T), pr.Behavior[0][0].IPC)
	}
}

func TestDVFSSensitivityCorners(t *testing.T) {
	lib := testLibrary(t)
	deg := func(name string) float64 {
		pr, err := lib.Profile(name)
		if err != nil {
			t.Fatalf("Profile(%s): %v", name, err)
		}
		_, tT := pr.WholeProgram(modes.Turbo)
		_, tE := pr.WholeProgram(modes.Eff2)
		return 1 - tT/tE
	}
	mcf := deg("mcf")
	six := deg("sixtrack")
	// Fig 2: sixtrack's Eff2 degradation approaches the 15% frequency cut;
	// mcf's is far smaller (paper: 5.1%).
	if six < 0.10 {
		t.Errorf("sixtrack Eff2 degradation %.1f%%, want >= 10%% (CPU-bound corner)", six*100)
	}
	if mcf > six/2 {
		t.Errorf("mcf Eff2 degradation %.1f%% not well below sixtrack's %.1f%%", mcf*100, six*100)
	}
}

func TestPowerScalingNearCubic(t *testing.T) {
	lib := testLibrary(t)
	pr, err := lib.Profile("crafty")
	if err != nil {
		t.Fatal(err)
	}
	pT, _ := pr.WholeProgram(modes.Turbo)
	pE2, _ := pr.WholeProgram(modes.Eff2)
	got := pE2 / pT
	want := lib.Model().ScaleLaw(lib.Plan(), modes.Eff2)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("Eff2/Turbo power ratio %.4f, design-time scale law %.4f (>2%% apart)", got, want)
	}
}
