package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpm/internal/config"
)

func smallCache() *Cache {
	// 4 sets × 2 ways × 64B blocks = 512 B.
	return New(config.CacheLevel{SizeBytes: 512, Assoc: 2, BlockSize: 64, LatencyCycles: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1000 + 63) {
		t.Error("same-block access missed")
	}
	if c.Access(0x1000 + 64) {
		t.Error("next block should miss")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Errorf("stats (%d,%d), want (4,2)", acc, miss)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := smallCache()
	// Three blocks mapping to the same set (set index = bits 6.. of block):
	// addresses with identical (addr>>6)%4.
	a0, a1, a2 := uint64(0x0000), uint64(0x0400), uint64(0x0800) // block 0, 16, 32 — all set 0
	c.Access(a0)
	c.Access(a1)
	// touch a0 so a1 is LRU
	c.Access(a0)
	c.Access(a2) // evicts a1
	if !c.Probe(a0) {
		t.Error("recently used a0 evicted")
	}
	if c.Probe(a1) {
		t.Error("LRU victim a1 still resident")
	}
	if !c.Probe(a2) {
		t.Error("newly inserted a2 missing")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := smallCache()
	c.Access(0x0)
	acc, miss := c.Stats()
	for i := 0; i < 10; i++ {
		c.Probe(0x0)
		c.Probe(0x123456)
	}
	acc2, miss2 := c.Stats()
	if acc2 != acc || miss2 != miss {
		t.Error("Probe changed statistics")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := smallCache()
	c.Access(0x40)
	c.ResetStats()
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !c.Access(0x40) {
		t.Error("ResetStats evicted contents")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Error("empty cache should report 0 miss rate")
	}
	c.Access(0x0)
	c.Access(0x0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate %v, want 0.5", got)
	}
}

// Property: a working set no larger than the cache never misses after one
// full pass (LRU with a power-of-two set count is conflict-free for a dense
// block range).
func TestDenseResidencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := New(config.CacheLevel{SizeBytes: 4096, Assoc: 4, BlockSize: 64, LatencyCycles: 1})
		rng := rand.New(rand.NewSource(seed))
		base := uint64(rng.Intn(1 << 20))
		base -= base % 64
		// Touch 64 dense blocks = exactly cache capacity.
		for i := uint64(0); i < 64; i++ {
			c.Access(base + i*64)
		}
		c.ResetStats()
		for i := uint64(0); i < 64; i++ {
			if !c.Access(base + i*64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == accesses and the resident set never exceeds
// capacity (every miss fills exactly one line).
func TestAccountingProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		acc, miss := c.Stats()
		return acc == uint64(len(addrs)) && miss <= acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSharedL2Contention(t *testing.T) {
	l2 := NewSharedL2(config.CacheLevel{SizeBytes: 4096, Assoc: 4, BlockSize: 64, LatencyCycles: 9}, 2, 2)
	// Two back-to-back accesses at the same cycle to the same bank: the
	// second must queue behind the first.
	_, w1 := l2.AccessAt(0x0, 100)
	_, w2 := l2.AccessAt(0x0, 100)
	if w1 != 0 {
		t.Errorf("first access waited %d cycles", w1)
	}
	if w2 == 0 {
		t.Error("second same-cycle access did not queue")
	}
	contended, wait := l2.Contention()
	if contended != 1 || wait != w2 {
		t.Errorf("contention stats (%d,%d), want (1,%d)", contended, wait, w2)
	}
	// Different banks at a later time: bus still serializes.
	_, w3 := l2.AccessAt(0x40, 1000) // bank 1
	_, w4 := l2.AccessAt(0x0, 1000)  // bank 0, bus busy
	if w3 != 0 || w4 == 0 {
		t.Errorf("bus serialization broken: waits %d, %d", w3, w4)
	}
}

func TestSharedL2ResetStats(t *testing.T) {
	l2 := NewSharedL2(config.CacheLevel{SizeBytes: 4096, Assoc: 4, BlockSize: 64, LatencyCycles: 9}, 2, 2)
	l2.AccessAt(0x0, 0)
	l2.AccessAt(0x0, 0)
	l2.ResetStats()
	if acc, _ := l2.Stats(); acc != 0 {
		t.Error("ResetStats left access counts")
	}
	if c, w := l2.Contention(); c != 0 || w != 0 {
		t.Error("ResetStats left contention counts")
	}
	if !l2.Access(0x0) {
		t.Error("contents should survive ResetStats")
	}
}

func TestHierarchyLevels(t *testing.T) {
	cfg := config.Default(1)
	l2 := NewSharedL2(cfg.Mem.L2, cfg.Mem.L2Banks, cfg.Mem.L2BusCyclesPerAccess)
	h := NewHierarchy(cfg.Mem, l2)
	addr := uint64(0x4000_0000)
	if lv := h.DataAccess(addr); lv != LevelMemory {
		t.Errorf("cold access level %v, want memory", lv)
	}
	if lv := h.DataAccess(addr); lv != LevelL1 {
		t.Errorf("warm access level %v, want L1", lv)
	}
	// Evict from tiny L1 but not from L2: stream past L1 capacity.
	for i := uint64(1); i <= 4096; i++ {
		h.DataAccess(addr + i*128)
	}
	if lv := h.DataAccess(addr); lv != LevelL2 {
		t.Errorf("L1-evicted block level %v, want L2", lv)
	}
	if lv := h.InstrFetch(0x1000_0000); lv != LevelMemory {
		t.Errorf("cold fetch %v, want memory", lv)
	}
	if lv := h.InstrFetch(0x1000_0000); lv != LevelL1 {
		t.Errorf("warm fetch %v, want L1", lv)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMemory.String() != "memory" {
		t.Error("Level.String broken")
	}
}
