// Package cache implements the memory hierarchy of Table 1: per-core L1
// instruction and data caches and a unified L2 shared across cores, backed by
// a fixed-latency memory. It also models L2 bank and bus contention for the
// full-CMP validation simulator (internal/fullsim).
package cache

import (
	"fmt"
	"slices"

	"gpm/internal/config"
)

// Level identifies where an access was satisfied.
type Level uint8

const (
	// LevelL1 means the access hit in the first-level cache.
	LevelL1 Level = iota
	// LevelL2 means it missed L1 and hit the shared L2.
	LevelL2
	// LevelMemory means it missed the whole hierarchy.
	LevelMemory
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	default:
		return "memory"
	}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	stamp uint64 // LRU timestamp
}

// Cache is one set-associative, LRU, write-allocate cache.
type Cache struct {
	sets      [][]line
	setMask   uint64
	blockBits uint
	stamp     uint64

	accesses   uint64
	misses     uint64
	writebacks uint64
}

// New builds a cache from the level parameters.
func New(p config.CacheLevel) *Cache {
	nSets := p.SizeBytes / (p.Assoc * p.BlockSize)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: invalid set count %d", nSets))
	}
	c := &Cache{
		sets:    make([][]line, nSets),
		setMask: uint64(nSets - 1),
	}
	lines := make([]line, nSets*p.Assoc)
	for i := range c.sets {
		c.sets[i] = lines[i*p.Assoc : (i+1)*p.Assoc : (i+1)*p.Assoc]
	}
	for b := p.BlockSize; b > 1; b >>= 1 {
		c.blockBits++
	}
	return c
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.blockBits
	return blk & c.setMask, blk >> 0
}

// Access looks addr up as a read, updates LRU state, and fills on miss. It
// returns whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	hit, _ := c.AccessRW(addr, false)
	return hit
}

// AccessRW is Access with write intent (write-allocate, write-back): a write
// marks the line dirty, and evicting a dirty line counts a writeback.
func (c *Cache) AccessRW(addr uint64, write bool) (hit, writeback bool) {
	c.accesses++
	c.stamp++
	set, tag := c.index(addr)
	lines := c.sets[set]
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].stamp = c.stamp
			if write {
				lines[i].dirty = true
			}
			return true, false
		}
		if !lines[i].valid {
			victim = i
			oldest = 0
		} else if lines[i].stamp < oldest {
			victim = i
			oldest = lines[i].stamp
		}
	}
	c.misses++
	if lines[victim].valid && lines[victim].dirty {
		writeback = true
		c.writebacks++
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, stamp: c.stamp}
	return false, writeback
}

// Probe reports whether addr is resident without touching LRU or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, ln := range c.sets[set] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Stats returns lifetime access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Writebacks returns how many dirty lines were evicted.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// ResetStats clears counters but keeps contents (used after warmup).
func (c *Cache) ResetStats() { c.accesses, c.misses, c.writebacks = 0, 0, 0 }

// SharedL2 is the chip-wide unified L2 with optional bank/bus contention
// modeling. Direct accessors (Access, AccessAt) are not safe for concurrent
// use; multi-core cycle simulators either drive all cores from one goroutine
// or step cores concurrently through per-core L2Windows, whose deferred
// requests are merged by a single goroutine via Commit between windows.
type SharedL2 struct {
	c *Cache

	banks        []uint64 // next cycle each bank is free
	busFree      uint64   // next cycle the shared bus is free
	busPerAccess uint64
	bankMask     uint64
	blockBits    uint

	contended uint64 // accesses that waited
	waitTotal uint64 // cycles waited

	commitBuf []L2Req // scratch for Commit's canonical merge
}

// NewSharedL2 builds the shared L2. banks and busPerAccess come from
// config.MemoryHierarchy; contention is only charged through AccessAt.
func NewSharedL2(p config.CacheLevel, banks, busPerAccess int) *SharedL2 {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic("cache: L2 bank count must be a positive power of two")
	}
	s := &SharedL2{
		c:            New(p),
		banks:        make([]uint64, banks),
		busPerAccess: uint64(busPerAccess),
		bankMask:     uint64(banks - 1),
	}
	for b := p.BlockSize; b > 1; b >>= 1 {
		s.blockBits++
	}
	return s
}

// Access performs a contention-free lookup (used by the single-core
// characterization runs, matching the paper's single-threaded Turandot step).
func (s *SharedL2) Access(addr uint64) bool { return s.c.Access(addr) }

// AccessAt performs a lookup at absolute cycle `now`, charging bank and bus
// occupancy. It returns the hit outcome and the extra delay (cycles) the
// access spends queueing before service starts.
func (s *SharedL2) AccessAt(addr uint64, now uint64) (hit bool, wait uint64) {
	bank := (addr >> s.blockBits) & s.bankMask
	start := now
	if s.banks[bank] > start {
		start = s.banks[bank]
	}
	if s.busFree > start {
		start = s.busFree
	}
	wait = start - now
	// Bus is held for the transfer; the bank is busy for the access slot.
	s.busFree = start + s.busPerAccess
	s.banks[bank] = start + s.busPerAccess
	if wait > 0 {
		s.contended++
		s.waitTotal += wait
	}
	return s.c.Access(addr), wait
}

// Stats exposes the underlying cache counters.
func (s *SharedL2) Stats() (accesses, misses uint64) { return s.c.Stats() }

// MissRate proxies the underlying cache.
func (s *SharedL2) MissRate() float64 { return s.c.MissRate() }

// Contention returns how many accesses queued and the total cycles spent
// queueing.
func (s *SharedL2) Contention() (contended, waitCycles uint64) {
	return s.contended, s.waitTotal
}

// ResetStats clears all counters but keeps contents.
func (s *SharedL2) ResetStats() {
	s.c.ResetStats()
	s.contended, s.waitTotal = 0, 0
}

// L2Req is one shared-L2 request deferred during a synchronization window.
// (Now, Core, Seq) is a total order: Seq is the request's program-order index
// within its core's window, so no two requests compare equal.
type L2Req struct {
	Now   uint64 // global cycle at which the core presented the request
	Addr  uint64
	Core  int32
	Seq   uint32
	Fetch bool // instruction fetch: fills content but holds no bank/bus slot
}

// L2Window is one core's private view of the shared L2 for the duration of a
// synchronization window, enabling deterministic concurrent stepping:
//
//   - Hit/miss outcomes come from the shared contents frozen at window start
//     (Probe, which no one mutates mid-window) plus the blocks this core
//     itself filled during the window.
//   - Bank/bus queueing is computed against the occupancy frozen at window
//     start plus this core's own reservations; other cores' same-window
//     traffic becomes visible one window later, when Commit merges it.
//
// Both depend only on window-start shared state and the owning core's own
// actions, so a core's timing is independent of how the other cores are
// scheduled — results are bit-identical for any worker count.
type L2Window struct {
	s       *SharedL2
	core    int32
	banks   []uint64
	busFree uint64
	reqs    []L2Req
	fills   []uint64 // block numbers this core filled this window
}

// NewWindow builds core's deferred-request window. Begin must be called
// before each synchronization window.
func (s *SharedL2) NewWindow(core int) *L2Window {
	return &L2Window{s: s, core: int32(core), banks: make([]uint64, len(s.banks))}
}

// Begin snapshots the shared bank/bus occupancy and clears the window's
// deferred state. Call between Commits only (never while cores are stepping).
func (w *L2Window) Begin() {
	copy(w.banks, w.s.banks)
	w.busFree = w.s.busFree
	w.reqs = w.reqs[:0]
	w.fills = w.fills[:0]
}

// resident reports whether addr hits: frozen shared contents or an own fill.
func (w *L2Window) resident(addr uint64) bool {
	if w.s.c.Probe(addr) {
		return true
	}
	blk := addr >> w.s.blockBits
	for _, b := range w.fills {
		if b == blk {
			return true
		}
	}
	return false
}

func (w *L2Window) record(addr, now uint64, fetch bool) (hit bool) {
	hit = w.resident(addr)
	if !hit {
		w.fills = append(w.fills, addr>>w.s.blockBits)
	}
	w.reqs = append(w.reqs, L2Req{
		Now: now, Addr: addr, Core: w.core, Seq: uint32(len(w.reqs)), Fetch: fetch,
	})
	return hit
}

// data is the window-mode counterpart of SharedL2.AccessAt: it classifies the
// access and charges bank/bus queueing against the window's private view.
func (w *L2Window) data(addr, now uint64) (hit bool, wait uint64) {
	bank := (addr >> w.s.blockBits) & w.s.bankMask
	start := now
	if w.banks[bank] > start {
		start = w.banks[bank]
	}
	if w.busFree > start {
		start = w.busFree
	}
	wait = start - now
	w.busFree = start + w.s.busPerAccess
	w.banks[bank] = start + w.s.busPerAccess
	return w.record(addr, now, false), wait
}

// fetch is the window-mode counterpart of SharedL2.Access for instruction
// fetches, which (as in the serial model) bypass bank/bus arbitration.
func (w *L2Window) fetch(pc, now uint64) (hit bool) {
	return w.record(pc, now, true)
}

// Commit merges the windows' deferred requests into the shared L2 in the
// canonical order (request time, core ID, per-core program order) and replays
// them: contents and LRU state fill in merged order, and data requests
// re-arbitrate for banks and bus against the true interleaved occupancy,
// which is where cross-core contention statistics and the occupancy seen by
// the next window come from. The canonical order makes the merged state
// independent of core scheduling. Nil windows are permitted and skipped.
func (s *SharedL2) Commit(wins []*L2Window) {
	s.commitBuf = s.commitBuf[:0]
	for _, w := range wins {
		if w != nil {
			s.commitBuf = append(s.commitBuf, w.reqs...)
		}
	}
	slices.SortFunc(s.commitBuf, func(a, b L2Req) int {
		switch {
		case a.Now != b.Now:
			if a.Now < b.Now {
				return -1
			}
			return 1
		case a.Core != b.Core:
			return int(a.Core) - int(b.Core)
		default:
			return int(a.Seq) - int(b.Seq)
		}
	})
	for i := range s.commitBuf {
		r := &s.commitBuf[i]
		if !r.Fetch {
			bank := (r.Addr >> s.blockBits) & s.bankMask
			start := r.Now
			if s.banks[bank] > start {
				start = s.banks[bank]
			}
			if s.busFree > start {
				start = s.busFree
			}
			if wait := start - r.Now; wait > 0 {
				s.contended++
				s.waitTotal += wait
			}
			s.busFree = start + s.busPerAccess
			s.banks[bank] = start + s.busPerAccess
		}
		s.c.Access(r.Addr)
	}
}

// Hierarchy is one core's view of the memory system: private L1s over a
// (possibly shared) L2.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *SharedL2

	// win, when non-nil, defers this core's L2 traffic into a per-window
	// request log instead of mutating the shared L2 (concurrent stepping).
	win *L2Window
}

// SetWindow attaches (non-nil) or detaches (nil) the core's deferred-commit
// window. While attached, timed L2 traffic routes through the window.
func (h *Hierarchy) SetWindow(w *L2Window) { h.win = w }

// NewHierarchy builds per-core L1s over the given shared L2.
func NewHierarchy(m config.MemoryHierarchy, l2 *SharedL2) *Hierarchy {
	return &Hierarchy{
		L1I: New(m.L1I),
		L1D: New(m.L1D),
		L2:  l2,
	}
}

// DataAccess classifies a data read. Contention is not charged; use
// DataAccessAt in multi-core cycle simulation.
func (h *Hierarchy) DataAccess(addr uint64) Level {
	return h.DataAccessRW(addr, false)
}

// DataAccessRW classifies a data reference with write intent. L1 writebacks
// are counted by the L1 (Writebacks); the drain traffic itself is absorbed
// by write buffers and not charged as latency.
func (h *Hierarchy) DataAccessRW(addr uint64, write bool) Level {
	if hit, _ := h.L1D.AccessRW(addr, write); hit {
		return LevelL1
	}
	if h.L2.Access(addr) {
		return LevelL2
	}
	return LevelMemory
}

// DataAccessAt is DataAccessRW with L2 bank/bus contention at cycle now.
func (h *Hierarchy) DataAccessAt(addr, now uint64) (Level, uint64) {
	return h.DataAccessAtRW(addr, now, false)
}

// DataAccessAtRW adds write intent to DataAccessAt.
func (h *Hierarchy) DataAccessAtRW(addr, now uint64, write bool) (Level, uint64) {
	if hit, _ := h.L1D.AccessRW(addr, write); hit {
		return LevelL1, 0
	}
	var (
		hit  bool
		wait uint64
	)
	if h.win != nil {
		hit, wait = h.win.data(addr, now)
	} else {
		hit, wait = h.L2.AccessAt(addr, now)
	}
	if hit {
		return LevelL2, wait
	}
	return LevelMemory, wait
}

// InstrFetch classifies an instruction fetch.
func (h *Hierarchy) InstrFetch(pc uint64) Level {
	if h.L1I.Access(pc) {
		return LevelL1
	}
	if h.L2.Access(pc) {
		return LevelL2
	}
	return LevelMemory
}

// InstrFetchAt is InstrFetch with a global timestamp, for multi-core cycle
// simulation: fetches hold no bank/bus slot (matching InstrFetch) but their
// L2 fills must still merge in canonical time order with data traffic.
func (h *Hierarchy) InstrFetchAt(pc, now uint64) Level {
	if h.L1I.Access(pc) {
		return LevelL1
	}
	if h.win != nil {
		if h.win.fetch(pc, now) {
			return LevelL2
		}
		return LevelMemory
	}
	if h.L2.Access(pc) {
		return LevelL2
	}
	return LevelMemory
}

// ResetStats clears L1 counters (the shared L2 is reset by its owner).
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
}
