package core

import (
	"time"

	"gpm/internal/modes"
)

// Decision is the uniform input of one explore-boundary step of a global
// manager: everything the sense→predict→decide pipeline hands the manager,
// whether guarded or not. It exists so callers (internal/engine) drive
// Manager and ResilientManager through one interface instead of forking on
// the manager's concrete type.
type Decision struct {
	// BudgetW is the chip power budget for the coming interval, after every
	// upstream middleware stage (budget source, fault spikes, thermal clamp)
	// has been applied.
	BudgetW float64
	// ChipPowerW is the independent chip-level (VRM) power measurement for
	// the previous interval. Only the guarded manager consults it, for
	// cross-checking the per-core sensors.
	ChipPowerW float64
	// Samples are the per-core observations as reported by the (possibly
	// faulty) sensors.
	Samples []Sample
	// Lookahead, when non-nil, is the oracle probe (§5.6).
	Lookahead func(c int, m modes.Mode) (powerW, instr float64)
	// MemBound ranks cores by memory-boundedness (§5.2.2); may be nil.
	MemBound []float64
	// Now is the simulated time at the explore boundary. The managers ignore
	// it; the engine's decision supervisor uses it to align injected decision
	// stalls (fault.SolverStall) with the simulated clock.
	Now time.Duration
	// Hint is the previously actuated mode vector when the engine considers
	// it a valid warm-start seed (nil otherwise); forwarded to the policy
	// via Context.Hint.
	Hint modes.Vector
}

// StepDecision applies one decision through the plain manager.
func (g *Manager) StepDecision(d Decision) modes.Vector {
	g.hint = d.Hint
	return g.Step(d.BudgetW, d.Samples, d.Lookahead, d.MemBound)
}

// GuardStats reports the plain manager's guard interventions: none, ever.
func (g *Manager) GuardStats() (ResilientStats, bool) { return ResilientStats{}, false }

// StepDecision applies one decision through the guarded manager.
func (r *ResilientManager) StepDecision(d Decision) modes.Vector {
	r.inner.hint = d.Hint
	return r.Step(d.BudgetW, d.ChipPowerW, d.Samples, d.Lookahead, d.MemBound)
}

// GuardStats returns the guard's intervention counters.
func (r *ResilientManager) GuardStats() (ResilientStats, bool) { return r.Stats(), true }
