package core

import (
	"fmt"
	"math"

	"gpm/internal/modes"
)

// StableMaxBIPS is MaxBIPS with switching hysteresis. Interval-to-interval
// workload jitter makes plain MaxBIPS flip modes for marginal predicted
// gains, paying the Table 5 synchronization stall each time. StableMaxBIPS
// keeps the current vector unless the predicted best combination beats it by
// at least Threshold (fractional throughput), or the current vector no
// longer fits the budget.
//
// The policy is stateless with respect to its own history — the comparison
// baseline is ctx.Current — so it composes with the Manager like any other
// policy.
type StableMaxBIPS struct {
	// Threshold is the minimum fractional predicted-throughput gain that
	// justifies a mode switch (default 0.01 when zero).
	Threshold float64
}

// Name implements Policy.
func (p StableMaxBIPS) Name() string { return "StableMaxBIPS" }

// Decide implements Policy.
func (p StableMaxBIPS) Decide(ctx Context) modes.Vector {
	th := p.Threshold
	if th == 0 {
		th = 0.01
	}
	best := selectMaxThroughput(ctx.Plan, ctx.NumCores(), ctx.BudgetW, ctx.Matrices)
	curPower := ctx.Matrices.VectorPower(ctx.Current)
	if curPower > ctx.BudgetW {
		return best // must move: the present assignment violates the budget
	}
	curInstr := ctx.Matrices.VectorInstr(ctx.Current)
	if bestInstr := ctx.Matrices.VectorInstr(best); bestInstr > curInstr*(1+th) {
		return best
	}
	return ctx.Current.Clone()
}

// Fairness maximizes the harmonic mean of predicted per-core speedups
// (relative to each core's own Turbo prediction) subject to the budget —
// the §5.4 weighted-slowdown metric turned into an objective. It trades a
// little aggregate BIPS for balance across threads.
type Fairness struct{}

// Name implements Policy.
func (Fairness) Name() string { return "Fairness" }

// Decide implements Policy.
func (Fairness) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	mx := ctx.Matrices
	deepest := modes.Mode(ctx.Plan.NumModes() - 1)
	best := modes.Uniform(n, deepest)
	bestScore := -1.0
	bestPower := 0.0
	EnumerateVectors(ctx.Plan.NumModes(), n, func(v modes.Vector) bool {
		p := mx.VectorPower(v)
		if p > ctx.BudgetW {
			return true
		}
		// Harmonic mean of per-core speedups vs their own Turbo prediction;
		// completed cores (zero prediction) are excluded.
		var inv float64
		var k int
		for c, m := range v {
			turbo := mx.Instr[c][0]
			if turbo <= 0 {
				continue
			}
			s := mx.Instr[c][m] / turbo
			if s <= 0 {
				return true // a starved live core disqualifies the vector
			}
			inv += 1 / s
			k++
		}
		score := 1.0
		if k > 0 {
			score = float64(k) / inv
		}
		if score > bestScore || (score == bestScore && p < bestPower) {
			bestScore = score
			bestPower = p
			best = v.Clone()
		}
		return true
	})
	return best
}

// Hierarchical is the two-level structure §2 sketches: the global level
// allocates the chip budget across fixed clusters using the cheap greedy
// marginal-utility pass (GreedyMaxBIPS), and each cluster then refines its
// own assignment exhaustively over modes^ClusterSize combinations within
// the share the global level granted it (plus any aggregate slack, offered
// round-robin). Decision cost is O(cores²·modes + numClusters ·
// modes^ClusterSize) instead of modes^cores, making 64-core chips cheap
// while staying near the monolithic optimum.
type Hierarchical struct {
	// ClusterSize is the number of cores per cluster (default 4 when zero).
	ClusterSize int
}

// Name implements Policy.
func (p Hierarchical) Name() string { return fmt.Sprintf("Hierarchical(%d)", p.clusterSize()) }

func (p Hierarchical) clusterSize() int {
	if p.ClusterSize <= 0 {
		return 4
	}
	return p.ClusterSize
}

// Decide implements Policy.
func (p Hierarchical) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	k := p.clusterSize()
	mx := ctx.Matrices
	out := make(modes.Vector, n)

	type cluster struct{ lo, hi int }
	var clusters []cluster
	for lo := 0; lo < n; lo += k {
		hi := lo + k
		if hi > n {
			hi = n
		}
		clusters = append(clusters, cluster{lo, hi})
	}

	solve := func(i int, shareW float64) (modes.Vector, float64) {
		cl := clusters[i]
		sub := Matrices{
			Power: mx.Power[cl.lo:cl.hi],
			Instr: mx.Instr[cl.lo:cl.hi],
		}
		v := selectMaxThroughput(ctx.Plan, cl.hi-cl.lo, shareW, sub)
		return v, sub.VectorPower(v)
	}

	// Global level: a greedy marginal-utility allocation sets how much of
	// the budget each cluster can convert into throughput.
	coarse := (GreedyMaxBIPS{}).Decide(ctx)
	shares := make([]float64, len(clusters))
	var allocated float64
	for i, cl := range clusters {
		for c := cl.lo; c < cl.hi; c++ {
			shares[i] += mx.Power[c][coarse[c]]
		}
		allocated += shares[i]
	}
	headroom := ctx.BudgetW - allocated
	if headroom > 0 {
		// Spread the coarse pass's leftover evenly; the refinement pass
		// below reclaims whatever stays unused.
		for i := range shares {
			shares[i] += headroom / float64(len(shares))
		}
	}

	// Local level: exhaustive refinement within each cluster's share.
	used := make([]float64, len(clusters))
	for i, cl := range clusters {
		v, p := solve(i, shares[i])
		copy(out[cl.lo:cl.hi], v)
		used[i] = p
	}

	// Second pass: clusters rarely spend their exact share (mode power is
	// quantized), so re-offer the aggregate slack to each cluster in turn.
	var spent float64
	for _, p := range used {
		spent += p
	}
	for i, cl := range clusters {
		slack := ctx.BudgetW - spent
		if slack <= 0 {
			break
		}
		v, p := solve(i, used[i]+slack)
		copy(out[cl.lo:cl.hi], v)
		spent += p - used[i]
		used[i] = p
	}
	return out
}

// ScoreVector is a testing/inspection helper: the predicted throughput and
// power of vector v under matrices mx, with NaN protection.
func ScoreVector(mx Matrices, v modes.Vector) (instr, power float64) {
	instr = mx.VectorInstr(v)
	power = mx.VectorPower(v)
	if math.IsNaN(instr) {
		instr = 0
	}
	if math.IsNaN(power) {
		power = 0
	}
	return instr, power
}
