package core

import (
	"fmt"

	"gpm/internal/modes"
	"gpm/internal/solver"
)

// MaxBIPS is §5.2.3: exhaustively evaluate every mode combination with the
// predicted Power/BIPS Matrices and pick the highest-throughput combination
// that satisfies the budget. Ties break toward lower power, then toward the
// lexicographically smallest vector (fastest low-index cores), making the
// policy fully deterministic.
type MaxBIPS struct{}

// Name implements Policy.
func (MaxBIPS) Name() string { return "MaxBIPS" }

// Decide implements Policy.
func (MaxBIPS) Decide(ctx Context) modes.Vector {
	return selectMaxThroughput(ctx.Plan, ctx.NumCores(), ctx.BudgetW, ctx.Matrices)
}

// selectMaxThroughput is the shared exhaustive kernel for MaxBIPS-style
// selection over a (power, instr) matrix pair. It returns the all-deepest
// vector when no combination fits the budget. The running best is kept in a
// single scratch buffer (copy-in-place, no per-improvement allocation): an
// 8-core sweep used to clone dozens of vectors per decision.
func selectMaxThroughput(plan modes.Plan, n int, budgetW float64, mx Matrices) modes.Vector {
	deepest := modes.Mode(plan.NumModes() - 1)
	best := modes.Uniform(n, deepest)
	bestInstr := -1.0
	bestPower := 0.0
	EnumerateVectors(plan.NumModes(), n, func(v modes.Vector) bool {
		p := mx.VectorPower(v)
		if p > budgetW {
			return true
		}
		t := mx.VectorInstr(v)
		if t > bestInstr || (t == bestInstr && p < bestPower) {
			bestInstr = t
			bestPower = p
			copy(best, v)
		}
		return true
	})
	return best
}

// GreedyMaxBIPS approximates MaxBIPS in O(cores² × modes) instead of
// modes^cores: start from the all-deepest vector and repeatedly apply the
// single-core, single-step upgrade with the best ΔBIPS/ΔPower ratio that
// still fits the budget. It makes 64-core chips tractable (§5.5 notes the
// superlinear state-space growth of exploration with mode count).
//
// Tie-breaking is part of the contract: when several upgrades share the best
// ΔBIPS/ΔPower ratio, the lowest core index wins (the scan keeps the first
// maximum because the comparison is strict). internal/solver's greedy kernel
// replicates this rule, so solver cross-checks against this policy are
// deterministic even on symmetric (replicated-core) matrices.
type GreedyMaxBIPS struct{}

// Name implements Policy.
func (GreedyMaxBIPS) Name() string { return "GreedyMaxBIPS" }

// Decide implements Policy.
func (GreedyMaxBIPS) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	deepest := modes.Mode(ctx.Plan.NumModes() - 1)
	v := modes.Uniform(n, deepest)
	mx := ctx.Matrices
	power := mx.VectorPower(v)
	if power > ctx.BudgetW {
		return v // even the floor exceeds the budget
	}
	for {
		bestCore := -1
		bestRatio := -1.0
		var bestDP float64
		for c := 0; c < n; c++ {
			if v[c] == 0 {
				continue
			}
			up := v[c] - 1
			dp := mx.Power[c][up] - mx.Power[c][v[c]]
			di := mx.Instr[c][up] - mx.Instr[c][v[c]]
			if power+dp > ctx.BudgetW {
				continue
			}
			ratio := di
			if dp > 1e-12 {
				ratio = di / dp
			} else if di > 0 {
				ratio = 1e18 // free throughput
			}
			// Strict > resolves ratio ties to the lowest core index.
			if ratio > bestRatio {
				bestRatio = ratio
				bestCore = c
				bestDP = dp
			}
		}
		if bestCore < 0 {
			return v
		}
		v[bestCore]--
		power += bestDP
	}
}

// Priority is §5.2.1: core n-1 has the highest priority, core 0 the lowest.
// Starting from the all-deepest vector, each core — in priority order — is
// raised to the fastest mode that still fits the budget given the cores
// already placed (lower-priority cores held at the deepest mode). This
// yields the paper's "release core4 first, then cores 3 to 1" behaviour, and
// its out-of-order variant for small budget steps: a high-priority core that
// cannot fit its next mode leaves the slack to the next core in order.
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "Priority" }

// Decide implements Policy.
func (Priority) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	deepest := modes.Mode(ctx.Plan.NumModes() - 1)
	v := modes.Uniform(n, deepest)
	mx := ctx.Matrices
	for c := n - 1; c >= 0; c-- {
		for m := modes.Mode(0); m < deepest; m++ {
			v[c] = m
			if mx.VectorPower(v) <= ctx.BudgetW {
				break
			}
			v[c] = deepest
		}
	}
	if mx.VectorPower(v) > ctx.BudgetW {
		return modes.Uniform(n, deepest)
	}
	return v
}

// PullHiPushLo is §5.2.2: balance per-core power by slowing the
// highest-power core on a budget overshoot and speeding up the lowest-power
// core when slack allows. Ties break toward the more memory-bound benchmark
// (ctx.MemBound), the paper's stated preference order, then toward the
// lower-numbered core.
type PullHiPushLo struct{}

// Name implements Policy.
func (PullHiPushLo) Name() string { return "PullHiPushLo" }

// Decide implements Policy.
func (PullHiPushLo) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	deepest := modes.Mode(ctx.Plan.NumModes() - 1)
	v := ctx.Current.Clone()
	mx := ctx.Matrices
	memBound := func(c int) float64 {
		if c < len(ctx.MemBound) {
			return ctx.MemBound[c]
		}
		return 0
	}

	// Pull down while over budget.
	for mx.VectorPower(v) > ctx.BudgetW {
		pick := -1
		for c := 0; c < n; c++ {
			if v[c] >= deepest {
				continue
			}
			if pick < 0 {
				pick = c
				continue
			}
			pc, pp := mx.Power[c][v[c]], mx.Power[pick][v[pick]]
			switch {
			case pc > pp:
				pick = c
			case pc == pp && memBound(c) > memBound(pick):
				pick = c
			}
		}
		if pick < 0 {
			return modes.Uniform(n, deepest)
		}
		v[pick]++
	}

	// Push up while slack allows.
	for {
		power := mx.VectorPower(v)
		pick := -1
		for c := 0; c < n; c++ {
			if v[c] == 0 {
				continue
			}
			dp := mx.Power[c][v[c]-1] - mx.Power[c][v[c]]
			if power+dp > ctx.BudgetW {
				continue
			}
			if pick < 0 {
				pick = c
				continue
			}
			pc, pp := mx.Power[c][v[c]], mx.Power[pick][v[pick]]
			switch {
			case pc < pp:
				pick = c
			case pc == pp && memBound(c) > memBound(pick):
				pick = c
			}
		}
		if pick < 0 {
			return v
		}
		v[pick]--
	}
}

// ChipWideDVFS is §5.3: one global mode for the whole chip — the fastest
// uniform setting whose predicted power fits the budget.
type ChipWideDVFS struct{}

// Name implements Policy.
func (ChipWideDVFS) Name() string { return "ChipWideDVFS" }

// Decide implements Policy.
func (ChipWideDVFS) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	deepest := modes.Mode(ctx.Plan.NumModes() - 1)
	for m := modes.Mode(0); m <= deepest; m++ {
		v := modes.Uniform(n, m)
		if ctx.Matrices.VectorPower(v) <= ctx.BudgetW {
			return v
		}
	}
	return modes.Uniform(n, deepest)
}

// Oracle is §5.6: instead of predicted matrices it builds its Power/BIPS
// matrices from the actual future behaviour of the next explore interval
// (ctx.Lookahead) and exhaustively picks the best fitting combination — the
// conservative upper bound the paper compares MaxBIPS against.
type Oracle struct{}

// Name implements Policy.
func (Oracle) Name() string { return "Oracle" }

// Decide implements Policy.
func (o Oracle) Decide(ctx Context) modes.Vector {
	if ctx.Lookahead == nil {
		// Without future knowledge, fall back to the predictive optimum.
		return MaxBIPS{}.Decide(ctx)
	}
	n := ctx.NumCores()
	nm := ctx.Plan.NumModes()
	mx := Matrices{Power: make([][]float64, n), Instr: make([][]float64, n)}
	for c := 0; c < n; c++ {
		mx.Power[c] = make([]float64, nm)
		mx.Instr[c] = make([]float64, nm)
		if c < len(ctx.Samples) && ctx.Samples[c].Done {
			continue
		}
		for m := 0; m < nm; m++ {
			p, in := ctx.Lookahead(c, modes.Mode(m))
			// Even the oracle pays transition stalls; derate mode changes by
			// the §5.5 factor so its choices account for them.
			if modes.Mode(m) != ctx.Current[c] && ctx.ExploreSeconds > 0 {
				tr := ctx.Plan.TransitionTime(ctx.Current[c], modes.Mode(m)).Seconds()
				in *= ctx.ExploreSeconds / (ctx.ExploreSeconds + tr)
			}
			mx.Power[c][m] = p
			mx.Instr[c][m] = in
		}
	}
	return selectMaxThroughput(ctx.Plan, n, ctx.BudgetW, mx)
}

// Fixed always returns the same vector; the optimistic-static lower bound of
// §5.7 is built by sweeping Fixed policies over all combinations offline.
type Fixed struct {
	Vector modes.Vector
}

// Name implements Policy.
func (f Fixed) Name() string { return fmt.Sprintf("Fixed%s", f.Vector) }

// Decide implements Policy.
func (f Fixed) Decide(ctx Context) modes.Vector {
	v := f.Vector.Clone()
	deepest := modes.Mode(ctx.Plan.NumModes() - 1)
	for len(v) < ctx.NumCores() {
		v = append(v, deepest)
	}
	return v[:ctx.NumCores()]
}

// MinPower solves the dual problem the paper names in §1 ("minimizing the
// power for a given multi-core performance target"): among combinations
// whose predicted throughput stays at or above TargetFrac of the all-Turbo
// prediction, pick the one with the least predicted power. The chip budget
// still applies as a ceiling.
type MinPower struct {
	// TargetFrac is the throughput floor as a fraction of predicted
	// all-Turbo throughput (e.g. 0.95).
	TargetFrac float64
}

// Name implements Policy.
func (p MinPower) Name() string { return fmt.Sprintf("MinPower(%.2f)", p.TargetFrac) }

// Decide implements Policy.
func (p MinPower) Decide(ctx Context) modes.Vector {
	n := ctx.NumCores()
	mx := ctx.Matrices
	allTurbo := modes.Uniform(n, modes.Turbo)
	floor := mx.VectorInstr(allTurbo) * p.TargetFrac

	best := modes.Vector(nil)
	bestPower := 0.0
	bestInstr := 0.0
	EnumerateVectors(ctx.Plan.NumModes(), n, func(v modes.Vector) bool {
		pw := mx.VectorPower(v)
		if pw > ctx.BudgetW {
			return true
		}
		t := mx.VectorInstr(v)
		if t < floor {
			return true
		}
		if best == nil || pw < bestPower || (pw == bestPower && t > bestInstr) {
			best = v.Clone()
			bestPower = pw
			bestInstr = t
		}
		return true
	})
	if best == nil {
		// Infeasible floor: fall back to the best throughput under budget.
		return selectMaxThroughput(ctx.Plan, n, ctx.BudgetW, mx)
	}
	return best
}

// Registry returns the named policy, for CLI use. Fixed and MinPower carry
// parameters and are constructed directly instead. The maxbips-* names bind
// the internal/solver allocation solvers (each call returns a fresh solver
// instance, so stateful solvers never share state across simulations); use
// SolverRegistry to parameterize them.
func Registry(name string) (Policy, error) {
	return SolverRegistry(name, solver.Options{})
}

// SolverRegistry is Registry with solver parameters (DP quantum, hierarchy
// cluster size, worker and node caps) for the maxbips-* policies.
func SolverRegistry(name string, opt solver.Options) (Policy, error) {
	switch name {
	case "maxbips":
		return MaxBIPS{}, nil
	case "greedy":
		return GreedyMaxBIPS{}, nil
	case "priority":
		return Priority{}, nil
	case "pullhipushlo":
		return PullHiPushLo{}, nil
	case "chipwide":
		return ChipWideDVFS{}, nil
	case "oracle":
		return Oracle{}, nil
	case "stable":
		return StableMaxBIPS{}, nil
	case "fairness":
		return Fairness{}, nil
	case "hierarchical":
		return Hierarchical{}, nil
	case "maxbips-dp", "maxbips-bb", "maxbips-hier", "maxbips-sharded":
		sname := map[string]string{
			"maxbips-dp":      "dp",
			"maxbips-bb":      "bb",
			"maxbips-hier":    "hier",
			"maxbips-sharded": "exhaustive",
		}[name]
		s, err := solver.New(sname, opt)
		if err != nil {
			return nil, err
		}
		return SolverPolicy{Solver: s}, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (want maxbips|greedy|priority|pullhipushlo|chipwide|oracle|stable|fairness|hierarchical|maxbips-dp|maxbips-bb|maxbips-hier|maxbips-sharded)", name)
	}
}
