package core

import (
	"sync"
	"testing"

	"gpm/internal/modes"
	"gpm/internal/solver"
)

// TestSolverPolicyNodeCountRace is the regression for the shared NodeCount
// accumulator: Decide runs on value-receiver copies across concurrent sweep
// workers, all feeding one *int64, so the adds must be atomic. Before the
// fix this was a plain `+=` — run under `go test -race` this test fails on
// the old code and undercounts even without -race.
func TestSolverPolicyNodeCountRace(t *testing.T) {
	var nodes int64
	p := SolverPolicy{Solver: &solver.BB{}, NodeCount: &nodes}
	c := ctx(t, 55, []float64{20, 18, 15, 17, 20, 19, 14, 16},
		[]float64{900, 1000, 700, 850, 950, 880, 640, 720},
		modes.Uniform(8, modes.Turbo))

	ref := SolverPolicy{Solver: &solver.BB{}}.Decide(c)
	var perDecide int64
	{
		var one int64
		SolverPolicy{Solver: &solver.BB{}, NodeCount: &one}.Decide(c)
		perDecide = one
	}
	if perDecide == 0 {
		t.Fatal("test premise broken: BB decision visited 0 nodes")
	}

	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if v := p.Decide(c); !v.Equal(ref) {
					t.Errorf("concurrent Decide diverged: %v != %v", v, ref)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := p.SolveNodes()
	if !ok {
		t.Fatal("SolveNodes reports counting not wired")
	}
	if want := perDecide * workers * rounds; got != want {
		t.Fatalf("NodeCount = %d, want %d (lost updates)", got, want)
	}
}

// TestMatricesFlat pins the flat-backing contract MatricesInto provides for
// zero-copy solver sessions: Flat() exposes row-major aliases of the same
// storage the rows point into, reuse keeps the backing stable, and matrices
// assembled by hand (no flat backing) report ok = false.
func TestMatricesFlat(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo, modes.Eff1, modes.Eff2}
	s := samples([]float64{20, 15, 9}, []float64{1000, 850, 600})

	var mx Matrices
	pred.MatricesInto(&mx, cur, s)
	fp, fi, ok := mx.Flat()
	if !ok {
		t.Fatal("MatricesInto result reports no flat backing")
	}
	n, m := len(mx.Power), len(mx.Power[0])
	if len(fp) != n*m || len(fi) != n*m {
		t.Fatalf("flat lengths %d/%d, want %d", len(fp), len(fi), n*m)
	}
	for c := 0; c < n; c++ {
		for mo := 0; mo < m; mo++ {
			if fp[c*m+mo] != mx.Power[c][mo] || fi[c*m+mo] != mx.Instr[c][mo] {
				t.Fatalf("flat[%d,%d] diverges from rows", c, mo)
			}
		}
		if &fp[c*m] != &mx.Power[c][0] || &fi[c*m] != &mx.Instr[c][0] {
			t.Fatalf("row %d does not alias the flat backing", c)
		}
	}

	// Reuse must keep the same backing (pointer-stable for session aliasing).
	p0 := &fp[0]
	pred.MatricesInto(&mx, cur, s)
	fp2, _, ok := mx.Flat()
	if !ok || &fp2[0] != p0 {
		t.Fatal("reuse reallocated the flat backing")
	}

	// The allocating Matrices also carries a flat backing.
	alloc := pred.Matrices(cur, s)
	if _, _, ok := alloc.Flat(); !ok {
		t.Fatal("Matrices result reports no flat backing")
	}

	// Hand-shaped matrices (external rows) must refuse, not lie.
	hand := Matrices{Power: [][]float64{{1, 2}}, Instr: [][]float64{{3, 4}}}
	if _, _, ok := hand.Flat(); ok {
		t.Fatal("hand-shaped matrices claim a flat backing")
	}
}

// TestSolverPolicySessionInvariance pins that routing Decide through a
// warm-start session — with and without a hint in the Context — returns the
// bit-identical vector of the cold policy, and that SessionStats is wired.
func TestSolverPolicySessionInvariance(t *testing.T) {
	mk := func() Context {
		return ctx(t, 62, []float64{20, 18, 15, 17, 20, 19},
			[]float64{900, 1000, 700, 850, 950, 880},
			modes.Uniform(6, modes.Turbo))
	}
	cold := SolverPolicy{Solver: &solver.BB{}}.Decide(mk())

	p := NewSolverPolicy(&solver.BB{})
	if _, ok := p.SessionStats(); ok {
		t.Fatal("session reported active before EnsureSession")
	}
	p.EnsureSession()
	defer p.CloseSession()

	c := mk()
	v1 := p.Decide(c).Clone()
	if !v1.Equal(cold) {
		t.Fatalf("session Decide %v != cold %v", v1, cold)
	}
	c.Hint = v1
	if v2 := p.Decide(c); !v2.Equal(cold) {
		t.Fatalf("hinted session Decide %v != cold %v", v2, cold)
	}
	st, ok := p.SessionStats()
	if !ok || st.Solves != 2 {
		t.Fatalf("SessionStats = %+v ok=%v, want 2 solves", st, ok)
	}
	p.CloseSession()
	p.CloseSession() // idempotent
	if v3 := p.Decide(mk()); !v3.Equal(cold) {
		t.Fatalf("post-close cold Decide %v != cold %v", v3, cold)
	}
}
