package core

import "fmt"

// HistoryStateVersion is the schema version ExportState writes and
// ImportState accepts. Bump it when the table encoding changes shape.
const HistoryStateVersion = 1

// HistoryState is the versioned, portable snapshot of a HistoryPredictor's
// learned phase-signature tables — everything that is worth carrying across
// runs. The volatile per-core registers (pattern, warmth, last instruction
// count) are deliberately excluded: they describe where the *previous* run's
// final intervals stood, which is meaningless at the start of a new one, so
// an imported predictor starts with trained tables and cold registers.
//
// The struct is plain data, json.Marshal-able as-is; front ends (gpmsim
// calib -history-save/-history-load) own the file I/O.
type HistoryState struct {
	Version int           `json:"version"`
	Config  HistoryConfig `json:"config"`
	// Tables[c] is core c's pattern table: entry i is the delta bucket in
	// [−Buckets, Buckets] observed to follow pattern i, or −128 (untrained).
	Tables [][]int8 `json:"tables"`
}

// Validate checks a deserialized state for internal consistency: known
// version, a config its own Validate accepts, every table sized for that
// config, and every entry either trained-in-range or the cold marker.
func (st *HistoryState) Validate() error {
	if st.Version != HistoryStateVersion {
		return fmt.Errorf("core: history state version %d, want %d", st.Version, HistoryStateVersion)
	}
	if err := st.Config.Validate(); err != nil {
		return fmt.Errorf("core: history state config: %w", err)
	}
	cfg := st.Config.withDefaults()
	tsize := cfg.tableSize()
	for c, table := range st.Tables {
		if len(table) != tsize {
			return fmt.Errorf("core: history state core %d: table has %d entries, config wants %d", c, len(table), tsize)
		}
		for i, e := range table {
			if e != historyCold && (int(e) < -cfg.Buckets || int(e) > cfg.Buckets) {
				return fmt.Errorf("core: history state core %d entry %d: bucket %d outside [%d, %d]", c, i, e, -cfg.Buckets, cfg.Buckets)
			}
		}
	}
	return nil
}

// ExportState snapshots the predictor's trained tables. Before the first
// decision (no cores yet) it returns a valid state with zero tables. The
// returned state owns copies; mutating it does not affect the predictor.
func (h *HistoryPredictor) ExportState() *HistoryState {
	st := &HistoryState{Version: HistoryStateVersion, Config: h.cfg, Tables: make([][]int8, len(h.cores))}
	for c := range h.cores {
		st.Tables[c] = append([]int8(nil), h.cores[c].table...)
	}
	return st
}

// ImportState primes the predictor with previously exported tables: the
// per-core tables are copied in and the volatile registers start cold, so
// the first Depth intervals behave exactly like an untrained predictor and
// later lookups benefit from the prior run's training. The state must
// Validate, its config must equal the predictor's (a different geometry
// indexes the tables differently), and the predictor must not have decided
// yet in this run (importing over live state would splice two histories).
//
// The imported core count must match the width of the run the predictor
// will drive: MatricesInto resets all per-core state when the width
// differs, silently discarding the import.
func (h *HistoryPredictor) ImportState(st *HistoryState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if got := st.Config.withDefaults(); got != h.cfg {
		return fmt.Errorf("core: history state config %+v does not match predictor config %+v", got, h.cfg)
	}
	if len(h.cores) != 0 {
		return fmt.Errorf("core: ImportState on a predictor that has already decided (%d cores live)", len(h.cores))
	}
	n := len(st.Tables)
	h.cores = make([]historyCore, n)
	for c := range h.cores {
		h.cores[c].table = append([]int8(nil), st.Tables[c]...)
	}
	h.scratch = make([]Sample, n)
	return nil
}
