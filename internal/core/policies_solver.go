package core

import (
	"fmt"

	"gpm/internal/modes"
	"gpm/internal/solver"
)

// SolverPolicy adapts an internal/solver budgeted mode-allocation solver to
// the Policy interface: every explore-interval decision becomes one
// solver.Instance over the §5.5 matrices. This is how MaxBIPS-quality
// decisions reach chip widths the exhaustive kernel cannot — maxbips-bb is
// exact at 64+ cores, maxbips-hier scales to 1024.
type SolverPolicy struct {
	Solver solver.Solver
	// Label overrides the displayed name (default "MaxBIPS[<solver>]").
	Label string
	// NodeCount, when non-nil, accumulates the solver's search-node counts
	// across decisions (observability: engine.Result.Obs.SolverNodes). The
	// pointer is shared by the value-receiver copies Decide runs on.
	NodeCount *int64
}

// Name implements Policy.
func (p SolverPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("MaxBIPS[%s]", p.Solver.Name())
}

// Decide implements Policy.
func (p SolverPolicy) Decide(ctx Context) modes.Vector {
	v, stats := p.Solver.Solve(solver.Instance{
		Plan:    ctx.Plan,
		BudgetW: ctx.BudgetW,
		Power:   ctx.Matrices.Power,
		Instr:   ctx.Matrices.Instr,
	})
	if p.NodeCount != nil {
		*p.NodeCount += stats.Nodes
	}
	return v
}

// SolveNodes reports the cumulative search nodes visited across decisions,
// and whether counting is wired (NodeCount non-nil).
func (p SolverPolicy) SolveNodes() (int64, bool) {
	if p.NodeCount == nil {
		return 0, false
	}
	return *p.NodeCount, true
}
