package core

import (
	"fmt"
	"sync/atomic"

	"gpm/internal/modes"
	"gpm/internal/solver"
)

// SolverPolicy adapts an internal/solver budgeted mode-allocation solver to
// the Policy interface: every explore-interval decision becomes one
// solver.Instance over the §5.5 matrices. This is how MaxBIPS-quality
// decisions reach chip widths the exhaustive kernel cannot — maxbips-bb is
// exact at 64+ cores, maxbips-hier scales to 1024.
//
// A SolverPolicy value is cold: every Decide is an independent stateless
// solve, safe to share across concurrent sweep workers. NewSolverPolicy
// returns a policy that can additionally own a solver.Session — warm-started
// solves with scratch reuse across intervals — via EnsureSession; such a
// policy belongs to exactly one engine loop.
type SolverPolicy struct {
	Solver solver.Solver
	// Label overrides the displayed name (default "MaxBIPS[<solver>]").
	Label string
	// NodeCount, when non-nil, accumulates the solver's search-node counts
	// across decisions (observability: engine.Result.Obs.SolverNodes). The
	// pointer is shared by the value-receiver copies Decide runs on, and by
	// every sweep worker the policy value is copied into, so all access is
	// atomic.
	NodeCount *int64

	// session, when non-nil, is the warm-start session Decide routes solves
	// through. Only set on policies built by NewSolverPolicy.
	session *solver.Session
}

// NewSolverPolicy builds a solver policy eligible for a warm-start session.
// The session itself is created by EnsureSession (the engine loop does this
// when it adopts the policy) so that a policy that never reaches an engine
// stays cold.
func NewSolverPolicy(s solver.Solver) *SolverPolicy {
	return &SolverPolicy{Solver: s}
}

// EnsureSession creates the policy's warm-start session if it does not
// exist. The owner must pair it with CloseSession.
func (p *SolverPolicy) EnsureSession() {
	if p.session == nil {
		p.session = solver.NewSession(p.Solver)
	}
}

// CloseSession tears down the warm-start session, if any. Idempotent; the
// policy reverts to cold solves.
func (p *SolverPolicy) CloseSession() {
	if p.session != nil {
		p.session.Close()
		p.session = nil
	}
}

// InvalidateSession drops the session's memoized optimum, delta certificate,
// and stability flag, if a session exists. The engine calls this at workload
// discontinuities (budget steps, core death, emergency throttles, supervisor
// degradation) where the previous interval's state is no longer evidence
// about the next one.
func (p *SolverPolicy) InvalidateSession() {
	if p.session != nil {
		p.session.Invalidate()
	}
}

// SessionStats returns the session's cumulative warm-start counters and
// whether a session is active.
func (p *SolverPolicy) SessionStats() (solver.SessionStats, bool) {
	if p.session == nil {
		return solver.SessionStats{}, false
	}
	return p.session.Stats(), true
}

// Name implements Policy.
func (p SolverPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("MaxBIPS[%s]", p.Solver.Name())
}

// Decide implements Policy.
func (p SolverPolicy) Decide(ctx Context) modes.Vector {
	inst := solver.Instance{
		Plan:    ctx.Plan,
		BudgetW: ctx.BudgetW,
		Power:   ctx.Matrices.Power,
		Instr:   ctx.Matrices.Instr,
	}
	if fp, fi, ok := ctx.Matrices.Flat(); ok {
		inst.FlatPower, inst.FlatInstr = fp, fi
	}
	// Generation handshake: when the predictor stamps change tracking onto
	// the matrices, pass it through so a session can gen-check its memo and
	// re-solve only the dirty cores. Untracked matrices (genID 0) leave the
	// instance untracked and the session falls back to content comparison.
	if gens, gen, genID := ctx.Matrices.Generations(); genID != 0 {
		inst.Gens, inst.Gen, inst.GenID = gens, gen, genID
	}
	var v modes.Vector
	var stats solver.Stats
	if p.session != nil {
		v, stats = p.session.Solve(inst, solver.Hint{Vector: ctx.Hint})
	} else {
		v, stats = p.Solver.Solve(inst)
	}
	if p.NodeCount != nil {
		atomic.AddInt64(p.NodeCount, stats.Nodes)
	}
	return v
}

// SolveNodes reports the cumulative search nodes visited across decisions,
// and whether counting is wired (NodeCount non-nil).
func (p SolverPolicy) SolveNodes() (int64, bool) {
	if p.NodeCount == nil {
		return 0, false
	}
	return atomic.LoadInt64(p.NodeCount), true
}
