package core

import (
	"fmt"
	"math"

	"gpm/internal/modes"
)

// GuardConfig tunes the ResilientManager's sanitization and hard-cap guard.
// The zero value of any field selects the documented default, so
// GuardConfig{} is a usable configuration.
type GuardConfig struct {
	// OvershootK is the number of consecutive over-budget explore intervals
	// tolerated before the emergency throttle engages. Default 3.
	OvershootK int
	// OvershootFrac is the relative tolerance above the budget before an
	// interval counts as an overshoot (policies legitimately ride the
	// boundary, §5.5). Default 0.02.
	OvershootFrac float64
	// RecoverFrac is the fraction of the budget chip power must fall to
	// before the throttle releases. Default 0.95.
	RecoverFrac float64
	// RecoverH is the number of consecutive recovered intervals required
	// before normal policy operation resumes (release hysteresis).
	// Default 2.
	RecoverH int
	// DeadIntervals is the number of consecutive zero-activity intervals
	// after which a live core is declared dead and parked. Default 3.
	DeadIntervals int
	// EWMAAlpha is the smoothing factor of the per-core power EWMA used for
	// outlier clamping. Default 0.25.
	EWMAAlpha float64
	// ClampFactor bounds how far a single power reading may stray from its
	// EWMA (both directions) before it is clamped. Default 4.
	ClampFactor float64
	// MaxCorePowerW is the absolute sanity ceiling on a per-core power
	// reading; anything above is rejected outright. Default 500.
	MaxCorePowerW float64
	// RescaleMismatchFrac triggers cross-checking against the chip-level
	// sensor: when the sanitized per-core powers disagree with the measured
	// chip power by more than this fraction, they are rescaled to match
	// (the chip-level VRM sensor is independent of the per-core sensors).
	// Default 0.10; negative disables.
	RescaleMismatchFrac float64
}

// DefaultGuard returns the default configuration, spelled out.
func DefaultGuard() GuardConfig {
	return GuardConfig{
		OvershootK:          3,
		OvershootFrac:       0.02,
		RecoverFrac:         0.95,
		RecoverH:            2,
		DeadIntervals:       3,
		EWMAAlpha:           0.25,
		ClampFactor:         4,
		MaxCorePowerW:       500,
		RescaleMismatchFrac: 0.10,
	}
}

// Validate rejects configurations withDefaults would silently misread:
// NaN/Inf float fields (NaN fails every threshold comparison, so a
// NaN-tuned guard would neither default nor ever fire). The front ends call
// it before building a guarded manager and wrap the error with their own
// option context.
func (c GuardConfig) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	switch {
	case bad(c.OvershootFrac):
		return fmt.Errorf("GuardConfig.OvershootFrac = %v: must be finite", c.OvershootFrac)
	case bad(c.RecoverFrac):
		return fmt.Errorf("GuardConfig.RecoverFrac = %v: must be finite", c.RecoverFrac)
	case bad(c.EWMAAlpha):
		return fmt.Errorf("GuardConfig.EWMAAlpha = %v: must be finite", c.EWMAAlpha)
	case bad(c.ClampFactor):
		return fmt.Errorf("GuardConfig.ClampFactor = %v: must be finite", c.ClampFactor)
	case bad(c.MaxCorePowerW):
		return fmt.Errorf("GuardConfig.MaxCorePowerW = %v: must be finite", c.MaxCorePowerW)
	case bad(c.RescaleMismatchFrac):
		return fmt.Errorf("GuardConfig.RescaleMismatchFrac = %v: must be finite", c.RescaleMismatchFrac)
	}
	return nil
}

func (c GuardConfig) withDefaults() GuardConfig {
	d := DefaultGuard()
	if c.OvershootK <= 0 {
		c.OvershootK = d.OvershootK
	}
	if c.OvershootFrac <= 0 {
		c.OvershootFrac = d.OvershootFrac
	}
	if c.RecoverFrac <= 0 || c.RecoverFrac >= 1 {
		c.RecoverFrac = d.RecoverFrac
	}
	if c.RecoverH <= 0 {
		c.RecoverH = d.RecoverH
	}
	if c.DeadIntervals <= 0 {
		c.DeadIntervals = d.DeadIntervals
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = d.EWMAAlpha
	}
	if c.ClampFactor <= 1 {
		c.ClampFactor = d.ClampFactor
	}
	if c.MaxCorePowerW <= 0 {
		c.MaxCorePowerW = d.MaxCorePowerW
	}
	if c.RescaleMismatchFrac == 0 {
		c.RescaleMismatchFrac = d.RescaleMismatchFrac
	}
	return c
}

// ResilientStats counts the guard's interventions over a run.
type ResilientStats struct {
	// SanitizedSamples counts readings rejected (NaN/Inf/negative/over
	// range/dropout) and replaced by the last known good value.
	SanitizedSamples int
	// ClampedSamples counts readings pulled back inside the EWMA band.
	ClampedSamples int
	// RescaledIntervals counts decisions where the per-core powers were
	// rescaled to the chip-level measurement.
	RescaledIntervals int
	// EmergencyEntries counts transitions into the emergency throttle.
	EmergencyEntries int
	// EmergencyIntervals counts explore intervals spent throttled.
	EmergencyIntervals int
	// LongestEmergency is the longest single throttle episode, in explore
	// intervals (entry until normal operation resumed).
	LongestEmergency int
	// DeadCores lists cores declared dead, in detection order.
	DeadCores []int
}

// ResilientManager wraps the global power manager of §2 with the defenses a
// production chip needs when its telemetry cannot be trusted:
//
//   - sample sanitization: NaN/range rejection with last-known-good
//     fallback, EWMA-based outlier clamping, and cross-checking the per-core
//     sensors against the independent chip-level power measurement;
//   - a hard-cap guard: after OvershootK consecutive over-budget intervals
//     the deepest mode vector is forced until measured chip power recovers
//     below RecoverFrac of budget for RecoverH intervals (hysteresis), at
//     which point normal policy operation resumes;
//   - graceful core-failure degradation: a core reporting no activity for
//     DeadIntervals intervals is declared dead and parked in the deepest
//     mode; marking it Done zeroes its rows in the §5.5 matrices, so the
//     policy naturally redistributes its budget share to the live cores.
type ResilientManager struct {
	inner *Manager
	plan  modes.Plan
	cfg   GuardConfig

	lastGood []Sample
	ewma     []float64
	hasEWMA  []bool
	zeroRun  []int
	dead     []bool

	overRun      int
	emergency    bool
	recoverRun   int
	emergencyLen int

	stats ResilientStats
}

// NewResilientManager builds a guarded manager for n cores.
func NewResilientManager(plan modes.Plan, policy Policy, pred Predictor, n int, cfg GuardConfig) *ResilientManager {
	return NewResilientManagerWith(plan, policy, pred, n, cfg)
}

// NewResilientManagerWith builds a guarded manager around any
// MatrixPredictor (see NewManagerWith). The guard's sanitization runs
// upstream of the predictor, so a stateful predictor only ever observes the
// repaired sample stream.
func NewResilientManagerWith(plan modes.Plan, policy Policy, pred MatrixPredictor, n int, cfg GuardConfig) *ResilientManager {
	return &ResilientManager{
		inner:    NewManagerWith(plan, policy, pred, n),
		plan:     plan,
		cfg:      cfg.withDefaults(),
		lastGood: make([]Sample, n),
		ewma:     make([]float64, n),
		hasEWMA:  make([]bool, n),
		zeroRun:  make([]int, n),
		dead:     make([]bool, n),
	}
}

// Stats returns a copy of the intervention counters.
func (r *ResilientManager) Stats() ResilientStats {
	s := r.stats
	s.DeadCores = append([]int(nil), r.stats.DeadCores...)
	if r.emergency && r.emergencyLen > s.LongestEmergency {
		s.LongestEmergency = r.emergencyLen
	}
	return s
}

// InEmergency reports whether the hard-cap throttle is currently engaged.
func (r *ResilientManager) InEmergency() bool { return r.emergency }

// Dead reports whether core c has been declared dead.
func (r *ResilientManager) Dead(c int) bool { return r.dead[c] }

// Current returns the mode vector currently in force.
func (r *ResilientManager) Current() modes.Vector { return r.inner.Current() }

// SetCurrent overrides the mode vector in force (used when an outer
// supervisor actuates a vector the manager did not choose, so the next
// interval's predictions are anchored to what actually ran).
func (r *ResilientManager) SetCurrent(v modes.Vector) { r.inner.SetCurrent(v) }

// Policy returns the wrapped policy.
func (r *ResilientManager) Policy() Policy { return r.inner.Policy() }

// Step performs one guarded explore-time decision. chipPowerW is the
// chip-level power measurement for the previous interval (the VRM-side
// sensor, independent of the per-core sensors); samples are the possibly
// corrupted per-core observations.
func (r *ResilientManager) Step(budgetW, chipPowerW float64, samples []Sample, lookahead func(int, modes.Mode) (float64, float64), memBound []float64) modes.Vector {
	clean := r.sanitize(samples)

	// Fall back to the per-core sum if the chip sensor itself reads junk.
	if math.IsNaN(chipPowerW) || math.IsInf(chipPowerW, 0) || chipPowerW < 0 {
		chipPowerW = 0
		for _, s := range clean {
			chipPowerW += s.PowerW
		}
	}
	r.crossCheck(clean, chipPowerW)

	if r.updateGuard(budgetW, chipPowerW) {
		// Emergency: force the deepest vector and keep the inner manager's
		// notion of the current vector consistent for the next prediction.
		deepest := modes.Uniform(len(clean), modes.Mode(r.plan.NumModes()-1))
		r.inner.SetCurrent(deepest)
		r.inner.lastCandidate = nil // the policy did not run
		return deepest
	}
	return r.inner.Step(budgetW, clean, lookahead, memBound)
}

// LastCandidate returns the wrapped policy's raw vector from the most recent
// decision, or nil while the emergency throttle bypassed the policy.
func (r *ResilientManager) LastCandidate() modes.Vector { return r.inner.LastCandidate() }

// sanitize repairs the per-core observations and advances the dead-core
// detector. It never mutates its input.
func (r *ResilientManager) sanitize(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	copy(out, samples)
	cfg := r.cfg
	for c := range out {
		if c >= len(r.lastGood) {
			break
		}
		if out[c].Done || r.dead[c] {
			out[c].Done = true
			continue
		}
		s := out[c]
		invalid := math.IsNaN(s.PowerW) || math.IsInf(s.PowerW, 0) || s.PowerW < 0 ||
			s.PowerW > cfg.MaxCorePowerW ||
			math.IsNaN(s.Instr) || math.IsInf(s.Instr, 0) || s.Instr < 0

		// Dead-core detection: a live core whose sensors report no power
		// and no committed instructions for DeadIntervals in a row has
		// failed (a single all-zero interval is treated as a dropout and
		// repaired below).
		zero := !invalid && s.PowerW == 0 && s.Instr == 0
		if zero {
			r.zeroRun[c]++
			if r.zeroRun[c] >= cfg.DeadIntervals {
				r.dead[c] = true
				r.stats.DeadCores = append(r.stats.DeadCores, c)
				out[c].Done = true
				continue
			}
			invalid = true // transient dropout until proven dead
		} else if !invalid {
			r.zeroRun[c] = 0
		}

		if invalid {
			r.stats.SanitizedSamples++
			out[c] = r.lastGood[c]
			continue
		}

		// EWMA outlier clamp: a single reading may not stray more than
		// ClampFactor× from the smoothed history in either direction.
		if r.hasEWMA[c] && r.ewma[c] > 0 {
			hi := r.ewma[c] * cfg.ClampFactor
			lo := r.ewma[c] / cfg.ClampFactor
			if out[c].PowerW > hi {
				out[c].PowerW = hi
				r.stats.ClampedSamples++
			} else if out[c].PowerW < lo {
				out[c].PowerW = lo
				r.stats.ClampedSamples++
			}
		}
		if r.hasEWMA[c] {
			r.ewma[c] += cfg.EWMAAlpha * (out[c].PowerW - r.ewma[c])
		} else {
			r.ewma[c] = out[c].PowerW
			r.hasEWMA[c] = true
		}
		r.lastGood[c] = out[c]
	}
	return out
}

// crossCheck reconciles the sanitized per-core powers with the independent
// chip-level measurement: a disagreement beyond RescaleMismatchFrac means
// some per-core sensor is lying (e.g. stuck-at-low), so the readings are
// scaled uniformly to sum to the trusted chip total.
func (r *ResilientManager) crossCheck(clean []Sample, chipPowerW float64) {
	frac := r.cfg.RescaleMismatchFrac
	if frac < 0 || chipPowerW <= 0 {
		return
	}
	var sum float64
	for c := range clean {
		if !clean[c].Done {
			sum += clean[c].PowerW
		}
	}
	if sum <= 0 || math.Abs(sum-chipPowerW) <= frac*chipPowerW {
		return
	}
	scale := chipPowerW / sum
	for c := range clean {
		if !clean[c].Done {
			clean[c].PowerW *= scale
		}
	}
	r.stats.RescaledIntervals++
}

// updateGuard advances the hard-cap state machine with the latest measured
// chip power and reports whether the emergency throttle is engaged for the
// coming interval.
func (r *ResilientManager) updateGuard(budgetW, chipPowerW float64) bool {
	cfg := r.cfg
	if !r.emergency {
		if chipPowerW > budgetW*(1+cfg.OvershootFrac) {
			r.overRun++
		} else {
			r.overRun = 0
		}
		if r.overRun >= cfg.OvershootK {
			r.emergency = true
			r.stats.EmergencyEntries++
			r.recoverRun = 0
			r.emergencyLen = 0
		}
	}
	if r.emergency {
		r.stats.EmergencyIntervals++
		r.emergencyLen++
		if chipPowerW <= budgetW*cfg.RecoverFrac {
			r.recoverRun++
		} else {
			r.recoverRun = 0
		}
		if r.recoverRun >= cfg.RecoverH {
			r.emergency = false
			r.overRun = 0
			if r.emergencyLen > r.stats.LongestEmergency {
				r.stats.LongestEmergency = r.emergencyLen
			}
			return false // resume normal policy this interval
		}
		return true
	}
	return false
}
