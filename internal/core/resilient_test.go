package core

import (
	"math"
	"testing"

	"gpm/internal/modes"
)

func newRM(n int, cfg GuardConfig) *ResilientManager {
	return NewResilientManager(plan(), MaxBIPS{}, predictor(), n, cfg)
}

func deepestVec(n int) modes.Vector {
	return modes.Uniform(n, modes.Mode(plan().NumModes()-1))
}

func TestGuardDefaultsFilled(t *testing.T) {
	cfg := GuardConfig{}.withDefaults()
	if cfg != DefaultGuard() {
		t.Errorf("zero config resolved to %+v, want %+v", cfg, DefaultGuard())
	}
	// Explicit settings survive.
	cfg = GuardConfig{OvershootK: 7, RecoverFrac: 0.5}.withDefaults()
	if cfg.OvershootK != 7 || cfg.RecoverFrac != 0.5 {
		t.Errorf("explicit values overwritten: %+v", cfg)
	}
}

func TestSanitizeRejectsGarbage(t *testing.T) {
	rm := newRM(2, GuardConfig{})
	good := samples([]float64{20, 18}, []float64{1000, 900})
	rm.Step(100, 38, good, nil, nil)

	bad := samples([]float64{math.NaN(), -5}, []float64{1000, 900})
	v := rm.Step(100, 38, bad, nil, nil)
	if !plan().Valid(v[0]) || !plan().Valid(v[1]) {
		t.Fatalf("invalid vector %v from garbage samples", v)
	}
	st := rm.Stats()
	if st.SanitizedSamples != 2 {
		t.Errorf("SanitizedSamples = %d, want 2 (NaN and negative)", st.SanitizedSamples)
	}

	// Infinity and over-range are rejected too.
	bad = samples([]float64{math.Inf(1), 1e6}, []float64{1000, 900})
	rm.Step(100, 38, bad, nil, nil)
	if got := rm.Stats().SanitizedSamples; got != 4 {
		t.Errorf("SanitizedSamples = %d, want 4", got)
	}
}

func TestEWMAClampsOutliers(t *testing.T) {
	rm := newRM(1, GuardConfig{})
	for i := 0; i < 5; i++ {
		rm.Step(100, 20, samples([]float64{20}, []float64{1000}), nil, nil)
	}
	// A 10× spike is physically implausible between intervals.
	rm.Step(100, 20, samples([]float64{200}, []float64{1000}), nil, nil)
	st := rm.Stats()
	if st.ClampedSamples != 1 {
		t.Errorf("ClampedSamples = %d, want 1", st.ClampedSamples)
	}
	if st.SanitizedSamples != 0 {
		t.Errorf("clamp should repair, not reject: %d rejections", st.SanitizedSamples)
	}
}

func TestEmergencyThrottleEngagesAndRecovers(t *testing.T) {
	cfg := GuardConfig{OvershootK: 3, RecoverH: 2}
	rm := newRM(2, cfg)
	s := samples([]float64{30, 30}, []float64{1000, 1000})
	budget := 50.0

	// Two overshoots: still normal operation.
	for i := 0; i < 2; i++ {
		rm.Step(budget, 60, s, nil, nil)
		if rm.InEmergency() {
			t.Fatalf("emergency after %d overshoots, want %d", i+1, cfg.OvershootK)
		}
	}
	// Third consecutive overshoot trips the guard.
	v := rm.Step(budget, 60, s, nil, nil)
	if !rm.InEmergency() {
		t.Fatal("guard did not engage after K consecutive overshoots")
	}
	if !v.Equal(deepestVec(2)) {
		t.Fatalf("emergency vector %v, want deepest %v", v, deepestVec(2))
	}

	// One recovered interval is not enough (hysteresis).
	v = rm.Step(budget, 40, s, nil, nil)
	if !rm.InEmergency() || !v.Equal(deepestVec(2)) {
		t.Fatal("guard released before RecoverH consecutive recoveries")
	}
	// Second recovered interval releases the throttle this step.
	v = rm.Step(budget, 40, s, nil, nil)
	if rm.InEmergency() {
		t.Fatal("guard still engaged after RecoverH recoveries")
	}
	if v.Equal(deepestVec(2)) {
		t.Fatal("released guard should hand control back to the policy")
	}

	st := rm.Stats()
	if st.EmergencyEntries != 1 {
		t.Errorf("EmergencyEntries = %d, want 1", st.EmergencyEntries)
	}
	if st.EmergencyIntervals != 3 {
		t.Errorf("EmergencyIntervals = %d, want 3", st.EmergencyIntervals)
	}
	if st.LongestEmergency != 3 {
		t.Errorf("LongestEmergency = %d, want 3", st.LongestEmergency)
	}
}

func TestOvershootRunMustBeConsecutive(t *testing.T) {
	rm := newRM(1, GuardConfig{OvershootK: 3})
	s := samples([]float64{30}, []float64{1000})
	for i := 0; i < 10; i++ {
		rm.Step(50, 60, s, nil, nil) // over
		rm.Step(50, 40, s, nil, nil) // under: resets the run
	}
	if rm.InEmergency() || rm.Stats().EmergencyEntries != 0 {
		t.Error("alternating overshoots must not trip the guard")
	}
}

func TestDeadCoreDetectionAndParking(t *testing.T) {
	cfg := GuardConfig{DeadIntervals: 3}
	rm := newRM(2, cfg)
	live := samples([]float64{20, 20}, []float64{1000, 1000})
	rm.Step(100, 40, live, nil, nil)

	halfDead := samples([]float64{20, 0}, []float64{1000, 0})
	// First two zero intervals are treated as dropouts.
	for i := 0; i < 2; i++ {
		rm.Step(100, 20, halfDead, nil, nil)
		if rm.Dead(1) {
			t.Fatalf("core declared dead after %d zero intervals, want %d", i+1, cfg.DeadIntervals)
		}
	}
	v := rm.Step(100, 20, halfDead, nil, nil)
	if !rm.Dead(1) {
		t.Fatal("core not declared dead after DeadIntervals zero intervals")
	}
	if v[1] != modes.Mode(plan().NumModes()-1) {
		t.Errorf("dead core in mode %v, want parked at deepest", v[1])
	}
	if v[0] == modes.Mode(plan().NumModes()-1) && rm.InEmergency() {
		t.Error("live core throttled by a neighbour's death")
	}
	st := rm.Stats()
	if len(st.DeadCores) != 1 || st.DeadCores[0] != 1 {
		t.Errorf("DeadCores = %v, want [1]", st.DeadCores)
	}

	// A dropout counter resets on recovery.
	rm2 := newRM(1, cfg)
	zero := samples([]float64{0}, []float64{0})
	ok := samples([]float64{20}, []float64{1000})
	rm2.Step(100, 20, ok, nil, nil)
	rm2.Step(100, 20, zero, nil, nil)
	rm2.Step(100, 20, zero, nil, nil)
	rm2.Step(100, 20, ok, nil, nil)
	rm2.Step(100, 20, zero, nil, nil)
	rm2.Step(100, 20, zero, nil, nil)
	if rm2.Dead(0) {
		t.Error("interleaved dropouts declared a live core dead")
	}
}

func TestDeadCoreBudgetRedistributes(t *testing.T) {
	// With one core dead, MaxBIPS should be able to keep the survivor at
	// Turbo under a budget that previously forced both cores down.
	rm := newRM(2, GuardConfig{DeadIntervals: 1})
	budget := 25.0 // two 20 W cores cannot both run Turbo
	both := samples([]float64{20, 20}, []float64{1000, 1000})
	v := rm.Step(budget, 40, both, nil, nil)
	if v[0] == modes.Turbo && v[1] == modes.Turbo {
		t.Fatal("budget should not admit two Turbo cores")
	}
	// Report power consistent with the mode each core actually ran in.
	p0 := 20 * plan().PowerScale(v[0])
	dead1 := samples([]float64{p0, 0}, []float64{1000, 0})
	v = rm.Step(budget, p0, dead1, nil, nil)
	if !rm.Dead(1) {
		t.Fatal("core 1 not declared dead")
	}
	if v[0] != modes.Turbo {
		t.Errorf("survivor in mode %v; the dead core's share should let it run Turbo", v[0])
	}
}

func TestCrossCheckRescalesStuckLowSensor(t *testing.T) {
	rm := newRM(2, GuardConfig{})
	// Core 1's sensor is stuck at 0.5 W but the chip sensor reads the true
	// 40 W total. Sanitized powers must be rescaled to sum to 40.
	s := samples([]float64{20, 0.5}, []float64{1000, 1000})
	rm.Step(100, 40, s, nil, nil)
	if got := rm.Stats().RescaledIntervals; got != 1 {
		t.Errorf("RescaledIntervals = %d, want 1", got)
	}
	// With agreement, no rescale happens.
	rm.Step(100, 20.5, s, nil, nil)
	if got := rm.Stats().RescaledIntervals; got != 1 {
		t.Errorf("RescaledIntervals = %d after agreeing interval, want 1", got)
	}
}

func TestChipSensorFallback(t *testing.T) {
	// A junk chip reading must not poison the guard: it falls back to the
	// per-core sum, which here is under budget.
	rm := newRM(1, GuardConfig{OvershootK: 1})
	s := samples([]float64{20}, []float64{1000})
	rm.Step(100, math.NaN(), s, nil, nil)
	rm.Step(100, math.Inf(1), s, nil, nil)
	rm.Step(100, -3, s, nil, nil)
	if rm.InEmergency() {
		t.Error("junk chip readings tripped the guard")
	}
}
