package core

import (
	"testing"
	"testing/quick"

	"gpm/internal/modes"
)

func TestStableMaxBIPSHoldsOnMarginalGains(t *testing.T) {
	// Current = one core at Eff1; switching it back to Turbo would gain
	// <1% predicted throughput. StableMaxBIPS must hold; plain MaxBIPS
	// flips.
	cur := modes.Vector{modes.Eff1, modes.Turbo, modes.Turbo, modes.Turbo}
	c := ctx(t, 1000, []float64{17, 20, 20, 20}, []float64{10, 4000, 4000, 4000}, cur)
	stable := StableMaxBIPS{Threshold: 0.01}.Decide(c)
	plain := MaxBIPS{}.Decide(c)
	if !stable.Equal(cur) {
		t.Errorf("StableMaxBIPS moved on a marginal gain: %v", stable)
	}
	if plain.Equal(cur) {
		t.Errorf("test premise broken: plain MaxBIPS should have switched")
	}
}

func TestStableMaxBIPSMovesOnViolationOrBigGain(t *testing.T) {
	// Budget violation forces a move regardless of hysteresis.
	cur := turbo4()
	c := ctx(t, 60, []float64{20, 20, 20, 20}, []float64{1000, 1000, 1000, 1000}, cur)
	v := StableMaxBIPS{}.Decide(c)
	if v.Equal(cur) {
		t.Error("StableMaxBIPS held a budget-violating vector")
	}
	// Large gain: one core parked at Eff2 while throughput-critical.
	cur2 := modes.Vector{modes.Eff2, modes.Turbo, modes.Turbo, modes.Turbo}
	c2 := ctx(t, 1000, []float64{12.3, 20, 20, 20}, []float64{850, 1000, 1000, 1000}, cur2)
	v2 := StableMaxBIPS{}.Decide(c2)
	if v2[0] != modes.Turbo {
		t.Errorf("StableMaxBIPS ignored a large gain: %v", v2)
	}
}

func TestFairnessBalancesSlowdowns(t *testing.T) {
	// Budget forces one step of slowdown somewhere. Core 0's BIPS barely
	// matters to aggregate throughput but equals the others' *relative*
	// loss; fairness should avoid starving any single core more than
	// needed, and the result must fit the budget.
	c := ctx(t, 75, []float64{20, 20, 20, 20}, []float64{100, 1000, 1000, 1000}, turbo4())
	v := Fairness{}.Decide(c)
	if got := c.Matrices.VectorPower(v); got > 75 {
		t.Errorf("fairness over budget: %.1f W", got)
	}
	// Compare worst-core relative slowdown to MaxBIPS's choice.
	worst := func(v modes.Vector) float64 {
		w := 1.0
		for cidx, m := range v {
			s := c.Matrices.Instr[cidx][m] / c.Matrices.Instr[cidx][0]
			if s < w {
				w = s
			}
		}
		return w
	}
	mb := MaxBIPS{}.Decide(c)
	if worst(v) < worst(mb)-1e-9 {
		t.Errorf("fairness worst-core speedup %.3f below MaxBIPS's %.3f", worst(v), worst(mb))
	}
}

func TestHierarchicalMatchesExhaustiveOnUniformDemand(t *testing.T) {
	// With uniform cores, per-cluster shares equal slices of the budget and
	// the hierarchical result should match the flat optimum's throughput.
	c := ctx(t, 144, []float64{20, 20, 20, 20, 20, 20, 20, 20},
		[]float64{1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000}, modes.Uniform(8, modes.Turbo))
	h := Hierarchical{ClusterSize: 4}.Decide(c)
	f := MaxBIPS{}.Decide(c)
	hi, hp := ScoreVector(c.Matrices, h)
	fi, _ := ScoreVector(c.Matrices, f)
	if hp > 144*1.0001 {
		t.Errorf("hierarchical over budget: %.1f W", hp)
	}
	if hi < fi*0.98 {
		t.Errorf("hierarchical throughput %.0f more than 2%% below flat %.0f", hi, fi)
	}
}

func TestHierarchicalHandlesOddCoreCounts(t *testing.T) {
	cur := modes.Uniform(6, modes.Turbo)
	powers := []float64{20, 25, 15, 20, 20, 20}
	instrs := []float64{500, 900, 300, 700, 800, 600}
	c := ctx(t, 100, powers, instrs, cur)
	v := Hierarchical{ClusterSize: 4}.Decide(c) // clusters of 4 and 2
	if len(v) != 6 {
		t.Fatalf("vector length %d", len(v))
	}
	if p := c.Matrices.VectorPower(v); p > 100*1.0001 {
		t.Errorf("over budget: %.1f W", p)
	}
}

// Property: hierarchical never exceeds the budget (cluster shares sum to
// exactly the budget and each cluster respects its share).
func TestHierarchicalBudgetProperty(t *testing.T) {
	f := func(pRaw [8]uint8, iRaw [8]uint8, bRaw, kRaw uint8) bool {
		n := 8
		powers := make([]float64, n)
		instrs := make([]float64, n)
		var total float64
		for i := 0; i < n; i++ {
			powers[i] = 10 + float64(pRaw[i]%25)
			instrs[i] = 100 + float64(iRaw[i])*7
			total += powers[i]
		}
		budget := total * (0.60 + float64(bRaw%41)/100)
		k := 2 + int(kRaw%4) // cluster sizes 2..5
		c := ctx(t, budget, powers, instrs, modes.Uniform(n, modes.Turbo))
		v := Hierarchical{ClusterSize: k}.Decide(c)
		_, p := ScoreVector(c.Matrices, v)
		if p <= budget*1.0001 {
			return true
		}
		// The only legal overshoot is every cluster stuck at its floor.
		return v.Equal(modes.Uniform(n, modes.Eff2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalName(t *testing.T) {
	if got := (Hierarchical{}).Name(); got != "Hierarchical(4)" {
		t.Errorf("default name %q", got)
	}
	if (Hierarchical{ClusterSize: 8}).Name() != "Hierarchical(8)" {
		t.Error("sized name wrong")
	}
}
