package core

import (
	"fmt"
	"math"

	"gpm/internal/modes"
)

// MatrixPredictor is the prediction seam of the sense → predict → decide
// loop: anything that can turn the previous interval's observations into the
// §5.5 Power and BIPS Matrices. The analytic Predictor (last-value scaling)
// is the paper's baseline implementation; HistoryPredictor layers a
// pattern-history table on top. Implementations may be stateful (the manager
// calls MatricesInto exactly once per decision, in interval order) but must
// be deterministic functions of the observation sequence.
type MatrixPredictor interface {
	// MatricesInto fills mx with the predicted matrices for the coming
	// interval, given the mode vector in force and the per-core samples
	// observed under it. Reuses mx's backing like Predictor.MatricesInto.
	MatricesInto(mx *Matrices, current modes.Vector, samples []Sample)
	// Explore returns the decision interval length in seconds, forwarded to
	// policies via Context.ExploreSeconds.
	Explore() float64
}

// Explore implements MatrixPredictor for the analytic last-value predictor.
func (p Predictor) Explore() float64 { return p.ExploreSeconds }

// Compile-time proof that both predictors satisfy MatrixPredictor.
var (
	_ MatrixPredictor = Predictor{}
	_ MatrixPredictor = (*HistoryPredictor)(nil)
)

// HistoryConfig tunes the history-table phase predictor. The zero value of
// any field selects the documented default, so HistoryConfig{} is usable.
type HistoryConfig struct {
	// Depth is the pattern length: how many consecutive quantized
	// utilization deltas form one history-table index. Default 3.
	Depth int
	// Buckets is the one-sided quantization range; a delta quantizes into
	// one of 2·Buckets+1 buckets (−Buckets … +Buckets). Default 3.
	Buckets int
	// StepFrac is the utilization-ratio width of one bucket: bucket k spans
	// instruction ratios around 1 + k·StepFrac. Default 0.08.
	StepFrac float64
}

// DefaultHistory returns the default configuration, spelled out.
func DefaultHistory() HistoryConfig {
	return HistoryConfig{Depth: 3, Buckets: 3, StepFrac: 0.08}
}

// Validate rejects configurations withDefaults would silently misread
// (non-finite StepFrac, negative counts). Front ends call it before building
// a history-equipped manager.
func (c HistoryConfig) Validate() error {
	if math.IsNaN(c.StepFrac) || math.IsInf(c.StepFrac, 0) || c.StepFrac < 0 {
		return fmt.Errorf("HistoryConfig.StepFrac = %v: must be finite and non-negative", c.StepFrac)
	}
	if c.Depth < 0 {
		return fmt.Errorf("HistoryConfig.Depth = %d: must be non-negative", c.Depth)
	}
	if c.Buckets < 0 {
		return fmt.Errorf("HistoryConfig.Buckets = %d: must be non-negative", c.Buckets)
	}
	if c.Depth > 8 {
		return fmt.Errorf("HistoryConfig.Depth = %d: table is (2·Buckets+1)^Depth entries; depth beyond 8 is not supported", c.Depth)
	}
	if c.Buckets > 15 {
		return fmt.Errorf("HistoryConfig.Buckets = %d: more than 15 delta buckets per side is not supported", c.Buckets)
	}
	if n := c.withDefaults().tableSize(); n > maxHistoryTable {
		return fmt.Errorf("HistoryConfig{Depth: %d, Buckets: %d}: %d-entry table exceeds the %d-entry cap", c.Depth, c.Buckets, n, maxHistoryTable)
	}
	return nil
}

// maxHistoryTable bounds the per-core pattern table (entries are one byte).
const maxHistoryTable = 1 << 20

// tableSize returns (2·Buckets+1)^Depth without overflowing past the cap.
func (c HistoryConfig) tableSize() int {
	nb := 2*c.Buckets + 1
	size := 1
	for i := 0; i < c.Depth; i++ {
		size *= nb
		if size > maxHistoryTable {
			return size
		}
	}
	return size
}

func (c HistoryConfig) withDefaults() HistoryConfig {
	d := DefaultHistory()
	if c.Depth <= 0 {
		c.Depth = d.Depth
	} else if c.Depth > 8 {
		c.Depth = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = d.Buckets
	} else if c.Buckets > 15 {
		c.Buckets = 15
	}
	if c.StepFrac <= 0 || math.IsNaN(c.StepFrac) || math.IsInf(c.StepFrac, 0) {
		c.StepFrac = d.StepFrac
	}
	return c
}

// HistoryStats counts the predictor's table activity over a run.
type HistoryStats struct {
	// Lookups counts decisions×cores where the history register was full
	// enough to index the table.
	Lookups int
	// Hits counts lookups answered by a trained table entry (the prediction
	// deviated from last-value).
	Hits int
	// ColdFallbacks counts lookups that fell back to last-value because the
	// indexed entry had never been trained.
	ColdFallbacks int
	// Resets counts per-core history resets forced by unusable telemetry
	// (non-finite readings, idle/finished cores).
	Resets int
}

// historyCore is one core's pattern-history state.
type historyCore struct {
	// table maps a packed pattern of the last Depth quantized deltas to the
	// delta bucket that followed it last time; historyCold marks untrained.
	table []int8
	// pattern is the packed history register (base 2·Buckets+1, Depth
	// digits); warmth counts deltas pushed since the last reset.
	pattern int
	warmth  int
	// prev is the previous interval's committed-instruction count.
	prev   float64
	prevOK bool
}

const historyCold = int8(-128)

// HistoryPredictor upgrades last-value prediction with a per-core pattern
// history table over quantized utilization deltas — the classic
// branch-predictor idea applied to program phases. Each interval the ratio
// of committed instructions to the previous interval's is quantized into a
// bucket; the table learns "after delta pattern P the next delta was b" and,
// on a warm entry, scales the observed instruction count by the predicted
// ratio before handing the sample to the analytic §5.5 projection. Cold
// entries, short histories and unusable telemetry all fall back to the
// wrapped base predictor bit-identically (power predictions always do: phase
// activity moves BIPS far more than it moves the V²f-dominated power).
//
// A HistoryPredictor is stateful and single-run: build a fresh one per
// managed run (cmpsim.Options.History / fullsim.ManagedOptions.History do).
type HistoryPredictor struct {
	base  Predictor
	cfg   HistoryConfig
	nb    int // buckets per delta digit: 2·Buckets+1
	tsize int // table entries: nb^Depth
	cores []historyCore
	// scratch holds the adjusted samples handed to the base predictor, so
	// steady-state prediction allocates nothing.
	scratch []Sample
	stats   HistoryStats
}

// NewHistoryPredictor wraps the analytic base predictor with a pattern
// history table. Zero-value cfg fields select defaults; call
// cfg.Validate() first when the configuration is user-supplied.
func NewHistoryPredictor(base Predictor, cfg HistoryConfig) *HistoryPredictor {
	cfg = cfg.withDefaults()
	if cfg.tableSize() > maxHistoryTable {
		cfg = DefaultHistory()
	}
	return &HistoryPredictor{base: base, cfg: cfg, nb: 2*cfg.Buckets + 1, tsize: cfg.tableSize()}
}

// Explore implements MatrixPredictor by delegating to the base predictor.
func (h *HistoryPredictor) Explore() float64 { return h.base.ExploreSeconds }

// Base returns the wrapped analytic predictor.
func (h *HistoryPredictor) Base() Predictor { return h.base }

// Stats returns a copy of the table-activity counters.
func (h *HistoryPredictor) Stats() HistoryStats { return h.stats }

// MatricesInto implements MatrixPredictor: advance each core's history with
// the new observation, then run the base §5.5 projection on the (possibly
// phase-adjusted) samples.
func (h *HistoryPredictor) MatricesInto(mx *Matrices, current modes.Vector, samples []Sample) {
	n := len(samples)
	if len(h.cores) != n {
		// First decision (or a caller changing width mid-run, which resets).
		h.cores = make([]historyCore, n)
		for c := range h.cores {
			h.cores[c].table = make([]int8, h.tsize)
			for i := range h.cores[c].table {
				h.cores[c].table[i] = historyCold
			}
		}
		h.scratch = make([]Sample, n)
	}
	adj := h.scratch[:n]
	for c := range samples {
		adj[c] = h.observe(c, samples[c])
	}
	h.base.MatricesInto(mx, current, adj)
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// observe advances core c's history with sample s and returns the sample the
// base predictor should project — s itself on every fallback path, so cold
// behavior is bit-identical to last-value prediction.
func (h *HistoryPredictor) observe(c int, s Sample) Sample {
	hc := &h.cores[c]
	if !finite(s.PowerW) || !finite(s.Instr) {
		// Hostile telemetry: a non-finite reading would poison every matrix
		// entry the base predictor derives from it. Replace it with a zeroed
		// sample (zero rows are harmless to every policy) and restart the
		// history — the delta across a sensor glitch is meaningless.
		hc.prevOK = false
		hc.warmth = 0
		h.stats.Resets++
		return Sample{Done: s.Done}
	}
	if s.Done || s.Instr <= 0 || s.PowerW < 0 {
		// Finished, idle or nonsensical-but-finite cores carry no phase
		// signal; pass the sample through untouched and restart the history.
		hc.prevOK = false
		hc.warmth = 0
		h.stats.Resets++
		return s
	}
	if hc.prevOK && hc.prev > 0 {
		b := h.quantize(s.Instr / hc.prev)
		if hc.warmth >= h.cfg.Depth {
			// The register holds the Depth deltas that led to this one:
			// train before pushing.
			hc.table[hc.pattern] = int8(b)
		}
		hc.pattern = (hc.pattern*h.nb + (b + h.cfg.Buckets)) % h.tsize
		hc.warmth++
	}
	hc.prev = s.Instr
	hc.prevOK = true

	if hc.warmth < h.cfg.Depth {
		return s
	}
	h.stats.Lookups++
	e := hc.table[hc.pattern]
	if e == historyCold {
		h.stats.ColdFallbacks++
		return s
	}
	h.stats.Hits++
	ratio := 1 + h.cfg.StepFrac*float64(e)
	instr := s.Instr * ratio
	if !finite(instr) || instr < 0 {
		// Overflow guard: a sample near MaxFloat64 times a >1 ratio must
		// still yield finite matrices.
		return s
	}
	return Sample{PowerW: s.PowerW, Instr: instr, Done: s.Done}
}

// quantize maps an instruction ratio to its delta bucket in
// [−Buckets, Buckets]: bucket k covers ratios nearest 1 + k·StepFrac. The
// range clamp happens before the float→int conversion so an extreme ratio
// (tiny previous interval) stays portable and deterministic.
func (h *HistoryPredictor) quantize(ratio float64) int {
	if h.cfg.StepFrac == 0 {
		return 0
	}
	d := (ratio - 1) / h.cfg.StepFrac
	if math.IsNaN(d) {
		return 0
	}
	if d >= float64(h.cfg.Buckets) {
		return h.cfg.Buckets
	}
	if d <= -float64(h.cfg.Buckets) {
		return -h.cfg.Buckets
	}
	return int(math.Round(d))
}
