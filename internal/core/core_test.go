package core

import (
	"math"
	"testing"
	"testing/quick"

	"gpm/internal/modes"
)

func plan() modes.Plan { return modes.Default(1.300, 0.010) }

func predictor() Predictor {
	return Predictor{Plan: plan(), ExploreSeconds: 500e-6, DerateTransitions: true}
}

func samples(powers, instrs []float64) []Sample {
	out := make([]Sample, len(powers))
	for i := range powers {
		out[i] = Sample{PowerW: powers[i], Instr: instrs[i]}
	}
	return out
}

func TestPredictorMatricesCubicAndLinear(t *testing.T) {
	pred := Predictor{Plan: plan(), ExploreSeconds: 500e-6} // no derating
	cur := modes.Vector{modes.Turbo, modes.Eff2}
	s := samples([]float64{20, 12.2825}, []float64{1000, 850})
	mx := pred.Matrices(cur, s)
	// Core 0 observed at Turbo: Eff2 power = 20×0.85³, Eff2 instr = 850.
	if got, want := mx.Power[0][int(modes.Eff2)], 20*0.614125; math.Abs(got-want) > 1e-9 {
		t.Errorf("core0 Eff2 power %v, want %v", got, want)
	}
	if got := mx.Instr[0][int(modes.Eff2)]; math.Abs(got-850) > 1e-9 {
		t.Errorf("core0 Eff2 instr %v, want 850", got)
	}
	// Core 1 observed at Eff2: its Turbo projection inverts the scaling.
	if got := mx.Power[1][int(modes.Turbo)]; math.Abs(got-20) > 1e-6 {
		t.Errorf("core1 Turbo power %v, want 20", got)
	}
	if got := mx.Instr[1][int(modes.Turbo)]; math.Abs(got-1000) > 1e-6 {
		t.Errorf("core1 Turbo instr %v, want 1000", got)
	}
	// Staying put is exact.
	if mx.Power[0][0] != 20 || mx.Instr[0][0] != 1000 {
		t.Error("identity projection must be exact")
	}
}

func TestPredictorTransitionDerating(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo}
	s := samples([]float64{20}, []float64{1000})
	mx := pred.Matrices(cur, s)
	// §5.5: Turbo->Eff2 BIPS carries the 500/(500+19.5) factor.
	raw := 1000 * 0.85
	want := raw * (500.0 / 519.5)
	if got := mx.Instr[0][int(modes.Eff2)]; math.Abs(got-want) > want*0.001 {
		t.Errorf("derated Eff2 instr %v, want ≈%v", got, want)
	}
	// No derating for the current mode.
	if mx.Instr[0][0] != 1000 {
		t.Error("current-mode prediction should be undamped")
	}
}

func TestPredictorParksDoneCores(t *testing.T) {
	pred := predictor()
	s := []Sample{{PowerW: 20, Instr: 100, Done: true}}
	mx := pred.Matrices(modes.Vector{modes.Turbo}, s)
	for m := range mx.Power[0] {
		if mx.Power[0][m] != 0 || mx.Instr[0][m] != 0 {
			t.Fatal("completed core should predict zeros")
		}
	}
}

func TestPredictorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on sample/core mismatch")
		}
	}()
	predictor().Matrices(modes.Vector{modes.Turbo}, nil)
}

func TestEnumerateVectorsCountAndOrder(t *testing.T) {
	var seen []string
	EnumerateVectors(3, 2, func(v modes.Vector) bool {
		seen = append(seen, v.String())
		return true
	})
	if len(seen) != 9 {
		t.Fatalf("enumerated %d vectors, want 9", len(seen))
	}
	if seen[0] != "[0 0]" || seen[1] != "[0 1]" || seen[8] != "[2 2]" {
		t.Errorf("enumeration order unexpected: %v", seen)
	}
	// Early stop.
	count := 0
	EnumerateVectors(3, 3, func(modes.Vector) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d, want 5", count)
	}
}

// Property: enumeration yields exactly numModes^n distinct vectors.
func TestEnumerateVectorsProperty(t *testing.T) {
	f := func(mRaw, nRaw uint8) bool {
		m := 2 + int(mRaw%3) // 2..4
		n := 1 + int(nRaw%5) // 1..5
		set := map[string]bool{}
		EnumerateVectors(m, n, func(v modes.Vector) bool {
			set[v.String()] = true
			return true
		})
		return len(set) == int(math.Pow(float64(m), float64(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ctx builds a decision context from explicit matrices.
func ctx(t testing.TB, budget float64, powers, instrs []float64, cur modes.Vector) Context {
	t.Helper()
	pred := predictor()
	s := samples(powers, instrs)
	return Context{
		Plan:           plan(),
		Current:        cur,
		BudgetW:        budget,
		Samples:        s,
		Matrices:       pred.Matrices(cur, s),
		ExploreSeconds: pred.ExploreSeconds,
	}
}

func turbo4() modes.Vector { return modes.Uniform(4, modes.Turbo) }

func TestMaxBIPSPicksAllTurboUnderLooseBudget(t *testing.T) {
	c := ctx(t, 1000, []float64{20, 20, 20, 20}, []float64{1000, 900, 800, 700}, turbo4())
	v := MaxBIPS{}.Decide(c)
	if !v.Equal(turbo4()) {
		t.Errorf("loose budget should keep all-Turbo, got %v", v)
	}
}

func TestMaxBIPSRespectsBudgetAndPrefersInsensitiveCores(t *testing.T) {
	// Core 0 is "memory bound": slowing it costs almost nothing — but the
	// linear-BIPS predictor cannot know that; with equal observations
	// MaxBIPS maximizes predicted throughput. Give core 0 lower observed
	// instr so slowing it sacrifices least predicted BIPS.
	c := ctx(t, 72, []float64{20, 20, 20, 20}, []float64{200, 1000, 1000, 1000}, turbo4())
	v := MaxBIPS{}.Decide(c)
	if got := c.Matrices.VectorPower(v); got > 72 {
		t.Errorf("MaxBIPS predicted power %v exceeds budget", got)
	}
	if v[0] == modes.Turbo {
		t.Errorf("expected the low-BIPS core to be slowed first, got %v", v)
	}
	for i := 1; i < 4; i++ {
		if v[i] != modes.Turbo && v[0] == modes.Turbo {
			t.Errorf("high-BIPS core %d slowed before core 0: %v", i, v)
		}
	}
}

func TestMaxBIPSInfeasibleFallsToDeepest(t *testing.T) {
	c := ctx(t, 1, []float64{20, 20, 20, 20}, []float64{1, 1, 1, 1}, turbo4())
	v := MaxBIPS{}.Decide(c)
	if !v.Equal(modes.Uniform(4, modes.Eff2)) {
		t.Errorf("impossible budget should yield all-deepest, got %v", v)
	}
}

func TestGreedyMatchesExhaustiveOnSmallCases(t *testing.T) {
	cases := []struct {
		budget float64
		powers []float64
		instrs []float64
	}{
		{72, []float64{20, 20, 20, 20}, []float64{200, 1000, 1000, 1000}},
		{65, []float64{22, 18, 20, 21}, []float64{900, 400, 700, 1000}},
		{80, []float64{20, 20, 20, 20}, []float64{1000, 1000, 1000, 1000}},
	}
	for i, tc := range cases {
		c := ctx(t, tc.budget, tc.powers, tc.instrs, turbo4())
		ve := MaxBIPS{}.Decide(c)
		vg := GreedyMaxBIPS{}.Decide(c)
		te := c.Matrices.VectorInstr(ve)
		tg := c.Matrices.VectorInstr(vg)
		if tg < te*0.99 {
			t.Errorf("case %d: greedy %.0f more than 1%% below exhaustive %.0f (%v vs %v)", i, tg, te, vg, ve)
		}
		if c.Matrices.VectorPower(vg) > tc.budget {
			t.Errorf("case %d: greedy exceeds budget", i)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	// Budget fits exactly one Turbo core (others at Eff2): the highest-
	// priority core (index 3) must get it.
	c := ctx(t, 20+3*12.3, []float64{20, 20, 20, 20}, []float64{1000, 1000, 1000, 1000}, turbo4())
	v := Priority{}.Decide(c)
	if v[3] != modes.Turbo {
		t.Errorf("core 3 (highest priority) not released first: %v", v)
	}
	if v[0] == modes.Turbo {
		t.Errorf("core 0 (lowest priority) released before budget allows: %v", v)
	}
}

func TestPriorityOutOfOrderRelease(t *testing.T) {
	// Core 3 is too hungry to upgrade, but core 2 fits: priority operates
	// out of order (§5.2.1). All-Eff2 predicts ≈67.6 W here; 72.5 W leaves
	// slack for core 2's +3.9 W Turbo upgrade but not core 3's +9.7 W Eff1.
	c := ctx(t, 72.5, []float64{40, 20, 10, 40}, []float64{1, 1, 1, 1}, turbo4())
	v := Priority{}.Decide(c)
	if v[3] == modes.Turbo {
		t.Errorf("hungry high-priority core should not fit Turbo: %v", v)
	}
	if v[2] == modes.Eff2 {
		t.Errorf("a cheaper lower-priority core should have been released: %v", v)
	}
}

func TestPullHiPushLoBalances(t *testing.T) {
	// Over budget at current modes: the highest-power core must slow.
	c := ctx(t, 70, []float64{30, 20, 15, 10}, []float64{1000, 1000, 1000, 1000}, turbo4())
	v := PullHiPushLo{}.Decide(c)
	if v[0] == modes.Turbo {
		t.Errorf("highest-power core not pulled down: %v", v)
	}
	if got := c.Matrices.VectorPower(v); got > 70 {
		t.Errorf("still over budget: %.1f W", got)
	}
	// Under budget with a deep core: the lowest-power core speeds up.
	cur := modes.Vector{modes.Eff2, modes.Eff2, modes.Eff2, modes.Eff2}
	c2 := ctx(t, 1000, []float64{12, 12, 12, 12}, []float64{600, 600, 600, 600}, cur)
	v2 := PullHiPushLo{}.Decide(c2)
	up := 0
	for _, m := range v2 {
		if m != modes.Eff2 {
			up++
		}
	}
	if up == 0 {
		t.Errorf("slack not used to push any core up: %v", v2)
	}
}

func TestChipWideUniform(t *testing.T) {
	c := ctx(t, 70, []float64{20, 20, 20, 20}, []float64{1000, 1000, 1000, 1000}, turbo4())
	v := ChipWideDVFS{}.Decide(c)
	for _, m := range v {
		if m != v[0] {
			t.Fatalf("chip-wide vector not uniform: %v", v)
		}
	}
	// 4×20=80 > 70; 4×17.1=68.6 <= 70 ⇒ Eff1.
	if v[0] != modes.Eff1 {
		t.Errorf("expected uniform Eff1, got %v", v)
	}
	// Impossible budget: deepest.
	c2 := ctx(t, 1, []float64{20, 20, 20, 20}, []float64{1, 1, 1, 1}, turbo4())
	if v := (ChipWideDVFS{}).Decide(c2); v[0] != modes.Eff2 {
		t.Errorf("impossible budget should park at deepest: %v", v)
	}
}

func TestOracleUsesLookahead(t *testing.T) {
	// Lookahead says core 0 loses nothing at Eff2 (memory bound); the
	// predictive matrices say otherwise. The oracle must slow core 0.
	c := ctx(t, 72, []float64{20, 20, 20, 20}, []float64{1000, 1000, 1000, 1000}, turbo4())
	c.Lookahead = func(cr int, m modes.Mode) (float64, float64) {
		p := 20 * plan().PowerScale(m)
		in := 1000 * plan().FreqScale(m)
		if cr == 0 {
			in = 1000 // frequency-insensitive
		}
		return p, in
	}
	v := Oracle{}.Decide(c)
	if v[0] == modes.Turbo {
		t.Errorf("oracle ignored lookahead: %v", v)
	}
	// Without lookahead the oracle degenerates to MaxBIPS.
	c.Lookahead = nil
	v2 := Oracle{}.Decide(c)
	v3 := MaxBIPS{}.Decide(c)
	if !v2.Equal(v3) {
		t.Errorf("lookahead-less oracle %v != MaxBIPS %v", v2, v3)
	}
}

func TestFixedPolicy(t *testing.T) {
	f := Fixed{Vector: modes.Vector{modes.Eff1, modes.Turbo}}
	c := ctx(t, 100, []float64{20, 20, 20, 20}, []float64{1, 1, 1, 1}, turbo4())
	v := f.Decide(c)
	if len(v) != 4 {
		t.Fatalf("Fixed did not pad to core count: %v", v)
	}
	if v[0] != modes.Eff1 || v[1] != modes.Turbo || v[2] != modes.Eff2 || v[3] != modes.Eff2 {
		t.Errorf("Fixed vector %v", v)
	}
}

func TestMinPowerMeetsFloor(t *testing.T) {
	c := ctx(t, 1000, []float64{20, 20, 20, 20}, []float64{1000, 400, 1000, 1000}, turbo4())
	v := MinPower{TargetFrac: 0.95}.Decide(c)
	allTurbo := c.Matrices.VectorInstr(turbo4())
	got := c.Matrices.VectorInstr(v)
	if got < 0.95*allTurbo {
		t.Errorf("throughput %v below the 95%% floor of %v", got, allTurbo)
	}
	if p := c.Matrices.VectorPower(v); p >= c.Matrices.VectorPower(turbo4()) {
		t.Errorf("MinPower saved nothing: %v W", p)
	}
	// Infeasible floor falls back to max throughput.
	v2 := MinPower{TargetFrac: 1.5}.Decide(c)
	v3 := MaxBIPS{}.Decide(c)
	if !v2.Equal(v3) {
		t.Errorf("infeasible floor: %v, want MaxBIPS fallback %v", v2, v3)
	}
}

func TestManagerLifecycle(t *testing.T) {
	mgr := NewManager(plan(), MaxBIPS{}, predictor(), 4)
	if !mgr.Current().Equal(turbo4()) {
		t.Fatal("manager should start all-Turbo")
	}
	s := samples([]float64{20, 20, 20, 20}, []float64{1000, 1000, 1000, 1000})
	v := mgr.Step(72, s, nil, nil)
	if v.Equal(turbo4()) {
		t.Error("tight budget should change modes")
	}
	if !mgr.Current().Equal(v) {
		t.Error("manager did not adopt its decision")
	}
	// Done cores park at deepest regardless of policy output.
	s[2].Done = true
	v = mgr.Step(1000, s, nil, nil)
	if v[2] != modes.Eff2 {
		t.Errorf("completed core not parked: %v", v)
	}
}

func TestManagerSanitizesBadPolicy(t *testing.T) {
	bad := Fixed{Vector: modes.Vector{modes.Mode(99), -1}}
	mgr := NewManager(plan(), bad, predictor(), 3)
	s := samples([]float64{20, 20, 20}, []float64{1, 1, 1})
	v := mgr.Step(100, s, nil, nil)
	for i, m := range v {
		if !plan().Valid(m) {
			t.Errorf("core %d got invalid mode %d", i, m)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"maxbips", "greedy", "priority", "pullhipushlo", "chipwide", "oracle"} {
		p, err := Registry(name)
		if err != nil || p == nil {
			t.Errorf("Registry(%s): %v", name, err)
		}
	}
	if _, err := Registry("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Property: every policy's decision always satisfies the budget according to
// the matrices it was given, or equals the all-deepest floor.
func TestPoliciesRespectBudgetProperty(t *testing.T) {
	policies := []Policy{MaxBIPS{}, GreedyMaxBIPS{}, Priority{}, PullHiPushLo{}, ChipWideDVFS{}}
	f := func(pRaw [4]uint8, iRaw [4]uint8, bRaw uint8, polRaw uint8) bool {
		powers := make([]float64, 4)
		instrs := make([]float64, 4)
		var total float64
		for i := 0; i < 4; i++ {
			powers[i] = 10 + float64(pRaw[i]%20)
			instrs[i] = 100 + float64(iRaw[i])*10
			total += powers[i]
		}
		budget := total * (0.55 + float64(bRaw%46)/100) // 55%..100%
		pol := policies[int(polRaw)%len(policies)]
		c := ctx(t, budget, powers, instrs, turbo4())
		v := pol.Decide(c)
		if c.Matrices.VectorPower(v) <= budget {
			return true
		}
		return v.Equal(modes.Uniform(4, modes.Eff2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MaxBIPS is optimal among all vectors for its own matrices.
func TestMaxBIPSOptimalityProperty(t *testing.T) {
	f := func(pRaw [3]uint8, iRaw [3]uint8, bRaw uint8) bool {
		powers := []float64{10 + float64(pRaw[0]%20), 10 + float64(pRaw[1]%20), 10 + float64(pRaw[2]%20)}
		instrs := []float64{100 + float64(iRaw[0])*10, 100 + float64(iRaw[1])*10, 100 + float64(iRaw[2])*10}
		budget := (powers[0] + powers[1] + powers[2]) * (0.55 + float64(bRaw%46)/100)
		cur := modes.Uniform(3, modes.Turbo)
		c := ctx(t, budget, powers, instrs, cur)
		v := MaxBIPS{}.Decide(c)
		best := c.Matrices.VectorInstr(v)
		ok := true
		EnumerateVectors(3, 3, func(u modes.Vector) bool {
			if c.Matrices.VectorPower(u) <= budget && c.Matrices.VectorInstr(u) > best+1e-9 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
