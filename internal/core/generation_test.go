package core

import (
	"math"
	"reflect"
	"testing"

	"gpm/internal/modes"
)

// TestMatricesGenerationStamping pins the handshake protocol: fresh layouts
// get a fresh nonzero genID with every core stamped, unchanged inputs skip
// both fill and stamp, and a single changed core bumps exactly its own
// generation plus the overall one.
func TestMatricesGenerationStamping(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo, modes.Eff1, modes.Eff2}
	s := samples([]float64{20, 15, 9}, []float64{1000, 850, 600})

	var mx Matrices
	pred.MatricesInto(&mx, cur, s)
	gens, gen, genID := mx.Generations()
	if genID == 0 {
		t.Fatal("fresh layout not tracked (genID 0)")
	}
	if gen != 1 {
		t.Fatalf("first fill gen = %d, want 1", gen)
	}
	for c, g := range gens {
		if g != 1 {
			t.Fatalf("core %d gen = %d after first fill, want 1", c, g)
		}
	}

	// Identical inputs: nothing moves.
	pred.MatricesInto(&mx, cur, s)
	gens2, gen2, genID2 := mx.Generations()
	if gen2 != 1 || genID2 != genID {
		t.Fatalf("idle call moved gen %d->%d or genID %d->%d", gen, gen2, genID, genID2)
	}
	for c, g := range gens2 {
		if g != 1 {
			t.Fatalf("idle call restamped core %d to %d", c, g)
		}
	}

	// One core's sample changes: only it restamps.
	s[1].Instr = 900
	pred.MatricesInto(&mx, cur, s)
	gens3, gen3, _ := mx.Generations()
	if gen3 != 2 {
		t.Fatalf("dirty call gen = %d, want 2", gen3)
	}
	if want := []uint64{1, 2, 1}; !reflect.DeepEqual(append([]uint64(nil), gens3...), want) {
		t.Fatalf("gens after one dirty core = %v, want %v", gens3, want)
	}

	// A mode change alone is also a dirty input.
	cur[2] = modes.Turbo
	pred.MatricesInto(&mx, cur, s)
	gens4, gen4, _ := mx.Generations()
	if gen4 != 3 || gens4[2] != 3 || gens4[0] != 1 || gens4[1] != 2 {
		t.Fatalf("gens after mode change = %v (gen %d), want [1 2 3] (gen 3)", gens4, gen4)
	}
}

// TestMatricesGenerationSkipBitIdentity drives a reused Matrices through a
// sequence of partial input changes and checks every snapshot is bit-
// identical to a from-scratch fill — the row-skip's correctness contract.
func TestMatricesGenerationSkipBitIdentity(t *testing.T) {
	pred := predictor()
	n := 6
	cur := modes.Uniform(n, modes.Turbo)
	s := make([]Sample, n)
	for c := range s {
		s[c] = Sample{PowerW: 10 + float64(c), Instr: 1e6 + 1e5*float64(c)}
	}

	var mx Matrices
	for step := 0; step < 20; step++ {
		// Mutate a rotating subset: one sample, sometimes a mode, sometimes a
		// Done flip, leaving most cores untouched.
		c := step % n
		switch step % 4 {
		case 0:
			s[c].Instr *= 1.01
		case 1:
			cur[c] = modes.Mode((int(cur[c]) + 1) % pred.Plan.NumModes())
		case 2:
			s[c].Done = !s[c].Done
		case 3:
			// No change at all: the whole call must skip.
		}
		pred.MatricesInto(&mx, cur, s)
		want := pred.Matrices(cur, s)
		for c := range want.Power {
			for m := range want.Power[c] {
				if mx.Power[c][m] != want.Power[c][m] || mx.Instr[c][m] != want.Instr[c][m] {
					t.Fatalf("step %d: core %d mode %d diverged: (%v,%v) != (%v,%v)",
						step, c, m, mx.Power[c][m], mx.Instr[c][m], want.Power[c][m], want.Instr[c][m])
				}
			}
		}
	}
}

// TestMatricesGenerationNaNAlwaysDirty pins the conservative NaN rule: a
// poisoned sample compares unequal to itself, so its core restamps every
// call and the skip can never freeze a NaN-derived row.
func TestMatricesGenerationNaNAlwaysDirty(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo, modes.Eff1}
	s := samples([]float64{20, 15}, []float64{1000, 850})
	s[0].PowerW = math.NaN()

	var mx Matrices
	pred.MatricesInto(&mx, cur, s)
	_, gen1, _ := mx.Generations()
	pred.MatricesInto(&mx, cur, s)
	gens, gen2, _ := mx.Generations()
	if gen2 != gen1+1 {
		t.Fatalf("NaN core did not dirty the call: gen %d -> %d", gen1, gen2)
	}
	if gens[0] != gen2 {
		t.Fatalf("NaN core not restamped: gens=%v gen=%d", gens, gen2)
	}
	if gens[1] != 1 {
		t.Fatalf("clean core restamped alongside NaN: gens=%v", gens)
	}
}

// TestMatricesGenerationUntracked checks hand-shaped matrices (not laid out
// by MatricesInto) report the untracked sentinel.
func TestMatricesGenerationUntracked(t *testing.T) {
	mx := Matrices{
		Power: [][]float64{{1, 2}},
		Instr: [][]float64{{3, 4}},
	}
	if gens, gen, genID := mx.Generations(); gens != nil || gen != 0 || genID != 0 {
		t.Fatalf("hand-shaped matrices tracked: gens=%v gen=%d genID=%d", gens, gen, genID)
	}
}

// TestMatricesGenerationFreshIDPerLayout checks two independent layouts never
// share a genID (the memo's identity key).
func TestMatricesGenerationFreshIDPerLayout(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo}
	s := samples([]float64{20}, []float64{1000})
	var a, b Matrices
	pred.MatricesInto(&a, cur, s)
	pred.MatricesInto(&b, cur, s)
	_, _, ida := a.Generations()
	_, _, idb := b.Generations()
	if ida == idb {
		t.Fatalf("independent layouts share genID %d", ida)
	}
}

// TestHistoryStateRoundTrip pins the persistence API: export after training,
// validate, import into a fresh predictor, and check the tables (and only
// the tables) carried over.
func TestHistoryStateRoundTrip(t *testing.T) {
	plan := testPlanH(t)
	base := Predictor{Plan: plan, ExploreSeconds: 500e-6}
	cfg := HistoryConfig{Depth: 2, Buckets: 3, StepFrac: 0.08}
	a := NewHistoryPredictor(base, cfg)
	cur := modes.Uniform(2, modes.Turbo)

	// A repeating ×1.08 / ÷1.08 alternation trains table entries once the
	// pattern register warms.
	var mx Matrices
	instr := []float64{1e6, 5e5}
	for i := 0; i < 10; i++ {
		s := []Sample{{PowerW: 10, Instr: instr[0]}, {PowerW: 8, Instr: instr[1]}}
		a.MatricesInto(&mx, cur, s)
		if i%2 == 0 {
			instr[0] *= 1.08
			instr[1] *= 1.08
		} else {
			instr[0] /= 1.08
			instr[1] /= 1.08
		}
	}

	st := a.ExportState()
	if err := st.Validate(); err != nil {
		t.Fatalf("exported state invalid: %v", err)
	}
	if len(st.Tables) != 2 {
		t.Fatalf("exported %d tables, want 2", len(st.Tables))
	}
	trained := 0
	for _, table := range st.Tables {
		for _, e := range table {
			if e != historyCold {
				trained++
			}
		}
	}
	if trained == 0 {
		t.Fatal("training produced no table entries; the round trip is vacuous")
	}

	b := NewHistoryPredictor(base, cfg)
	if err := b.ImportState(st); err != nil {
		t.Fatalf("import: %v", err)
	}
	if got := b.ExportState(); !reflect.DeepEqual(got.Tables, st.Tables) {
		t.Fatal("tables did not survive the round trip")
	}
	for c := range b.cores {
		if b.cores[c].warmth != 0 || b.cores[c].prevOK {
			t.Fatalf("core %d volatile registers imported: %+v", c, b.cores[c])
		}
	}

	// A matching-width decision preserves the imported tables...
	s := []Sample{{PowerW: 10, Instr: 1e6}, {PowerW: 8, Instr: 5e5}}
	b.MatricesInto(&mx, cur, s)
	if got := b.ExportState(); !reflect.DeepEqual(got.Tables, st.Tables) {
		t.Fatal("matching-width decision wiped imported tables")
	}
	// ...and a mismatched width resets them (the documented discard).
	b.MatricesInto(&mx, modes.Uniform(3, modes.Turbo),
		[]Sample{{PowerW: 10, Instr: 1e6}, {PowerW: 8, Instr: 5e5}, {PowerW: 6, Instr: 3e5}})
	if got := b.ExportState(); len(got.Tables) != 3 {
		t.Fatalf("width change kept %d tables, want reset to 3", len(got.Tables))
	}
}

// TestHistoryStateValidation is the table-driven rejection check for
// ImportState and Validate.
func TestHistoryStateValidation(t *testing.T) {
	plan := testPlanH(t)
	base := Predictor{Plan: plan, ExploreSeconds: 500e-6}
	cfg := HistoryConfig{Depth: 2, Buckets: 3, StepFrac: 0.08}
	mk := func() *HistoryState {
		h := NewHistoryPredictor(base, cfg)
		var mx Matrices
		h.MatricesInto(&mx, modes.Uniform(2, modes.Turbo),
			[]Sample{{PowerW: 10, Instr: 1e6}, {PowerW: 8, Instr: 5e5}})
		return h.ExportState()
	}

	cases := []struct {
		name string
		mut  func(*HistoryState)
	}{
		{"bad version", func(st *HistoryState) { st.Version = 99 }},
		{"invalid config", func(st *HistoryState) { st.Config.StepFrac = -1 }},
		{"short table", func(st *HistoryState) { st.Tables[0] = st.Tables[0][:1] }},
		{"entry out of range", func(st *HistoryState) { st.Tables[1][0] = 100 }},
	}
	for _, tc := range cases {
		st := mk()
		tc.mut(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		h := NewHistoryPredictor(base, cfg)
		if err := h.ImportState(st); err == nil {
			t.Errorf("%s: ImportState accepted", tc.name)
		}
	}

	// Config mismatch: a valid state for a different geometry.
	st := mk()
	other := NewHistoryPredictor(base, HistoryConfig{Depth: 3, Buckets: 3, StepFrac: 0.08})
	if err := other.ImportState(st); err == nil {
		t.Error("config-mismatched import accepted")
	}

	// Importing over a live predictor is refused.
	live := NewHistoryPredictor(base, cfg)
	var mx Matrices
	live.MatricesInto(&mx, modes.Uniform(2, modes.Turbo),
		[]Sample{{PowerW: 10, Instr: 1e6}, {PowerW: 8, Instr: 5e5}})
	if err := live.ImportState(mk()); err == nil {
		t.Error("import over a live predictor accepted")
	}
}
