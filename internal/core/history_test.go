package core

import (
	"math"
	"testing"

	"gpm/internal/modes"
)

func testPlanH(t testing.TB) modes.Plan {
	t.Helper()
	return modes.Default(1.0, 10)
}

// sameMatrices reports bit-identity of two matrices.
func sameMatrices(a, b *Matrices) bool {
	if len(a.Power) != len(b.Power) {
		return false
	}
	for c := range a.Power {
		for m := range a.Power[c] {
			if a.Power[c][m] != b.Power[c][m] || a.Instr[c][m] != b.Instr[c][m] {
				return false
			}
		}
	}
	return true
}

func finiteMatrices(mx *Matrices) bool {
	for c := range mx.Power {
		for m := range mx.Power[c] {
			if !finite(mx.Power[c][m]) || !finite(mx.Instr[c][m]) {
				return false
			}
		}
	}
	return true
}

// TestHistoryColdStartBitIdentical pins the fallback contract: until a
// core's pattern register fills AND its indexed table entry has been
// trained, the history predictor's matrices are bit-identical to the base
// predictor's on the same sample stream.
func TestHistoryColdStartBitIdentical(t *testing.T) {
	plan := testPlanH(t)
	base := Predictor{Plan: plan, ExploreSeconds: 500e-6, DerateTransitions: true}
	hist := NewHistoryPredictor(base, HistoryConfig{})
	cur := modes.Uniform(2, modes.Turbo)

	// A non-repeating delta stream: patterns never recur, so every lookup is
	// cold and every interval must match the base predictor exactly.
	stream := [][]Sample{
		{{PowerW: 10, Instr: 1e6}, {PowerW: 8, Instr: 5e5}},
		{{PowerW: 11, Instr: 1.3e6}, {PowerW: 8, Instr: 3e5}},
		{{PowerW: 9, Instr: 0.9e6}, {PowerW: 8.5, Instr: 5.1e5}},
		{{PowerW: 12, Instr: 1.8e6}, {PowerW: 7, Instr: 2e5}},
		{{PowerW: 10, Instr: 0.8e6}, {PowerW: 9, Instr: 6e5}},
	}
	var got, want Matrices
	for i, samples := range stream {
		hist.MatricesInto(&got, cur, samples)
		base.MatricesInto(&want, cur, samples)
		if !sameMatrices(&got, &want) {
			t.Fatalf("interval %d: cold history predictor diverged from base", i)
		}
	}
	if hist.Stats().Hits != 0 {
		t.Fatalf("non-repeating stream produced %d hits", hist.Stats().Hits)
	}
}

// TestHistoryWarmHitAdjustsPrediction drives a strictly periodic phase
// pattern long enough to train the table, then checks a warm hit scales the
// BIPS prediction by the learned bucket ratio while power stays last-value.
func TestHistoryWarmHitAdjustsPrediction(t *testing.T) {
	plan := testPlanH(t)
	base := Predictor{Plan: plan, ExploreSeconds: 500e-6}
	cfg := HistoryConfig{Depth: 2, Buckets: 3, StepFrac: 0.08}
	hist := NewHistoryPredictor(base, cfg)
	cur := modes.Uniform(1, modes.Turbo)

	// Alternate instruction counts 1e6 / 1.16e6: deltas quantize to the +2
	// and −2 buckets, a period-2 pattern the depth-2 table learns exactly.
	instr := func(i int) float64 {
		if i%2 == 0 {
			return 1e6
		}
		return 1.16e6
	}
	var got, want Matrices
	sawHit := false
	for i := 0; i < 12; i++ {
		s := []Sample{{PowerW: 10, Instr: instr(i)}}
		before := hist.Stats().Hits
		hist.MatricesInto(&got, cur, s)
		base.MatricesInto(&want, cur, s)
		if hist.Stats().Hits == before {
			continue
		}
		sawHit = true
		// Power rows must still be last-value.
		for m := range got.Power[0] {
			if got.Power[0][m] != want.Power[0][m] {
				t.Fatalf("interval %d mode %d: warm hit moved the power prediction", i, m)
			}
		}
		// The learned ratio for the next delta after this interval's pattern.
		next := instr(i+1) / instr(i)
		bucket := math.Round((next - 1) / cfg.StepFrac)
		if bucket > 3 {
			bucket = 3
		} else if bucket < -3 {
			bucket = -3
		}
		ratio := 1 + cfg.StepFrac*bucket
		for m := range got.Instr[0] {
			if wantI := want.Instr[0][m] * ratio; math.Abs(got.Instr[0][m]-wantI) > 1e-6*math.Abs(wantI) {
				t.Fatalf("interval %d mode %d: instr %v, want %v (ratio %v)", i, m, got.Instr[0][m], wantI, ratio)
			}
		}
	}
	if !sawHit {
		t.Fatal("periodic stream never produced a warm table hit")
	}
}

// TestHistoryResetOnHostileSample checks a non-finite reading zeroes the
// sample, restarts the history, and leaves matrices finite.
func TestHistoryResetOnHostileSample(t *testing.T) {
	plan := testPlanH(t)
	base := Predictor{Plan: plan, ExploreSeconds: 500e-6}
	hist := NewHistoryPredictor(base, HistoryConfig{})
	cur := modes.Uniform(1, modes.Turbo)
	var mx Matrices
	hist.MatricesInto(&mx, cur, []Sample{{PowerW: 10, Instr: 1e6}})
	hist.MatricesInto(&mx, cur, []Sample{{PowerW: math.NaN(), Instr: math.Inf(1)}})
	if !finiteMatrices(&mx) {
		t.Fatal("non-finite telemetry leaked into the matrices")
	}
	for m := range mx.Power[0] {
		if mx.Power[0][m] != 0 || mx.Instr[0][m] != 0 {
			t.Fatalf("hostile sample should predict zero rows, got P=%v I=%v", mx.Power[0][m], mx.Instr[0][m])
		}
	}
	if hist.Stats().Resets == 0 {
		t.Fatal("hostile sample did not reset the history")
	}
}

// TestHistoryConfigValidate exercises the config guard rails.
func TestHistoryConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  HistoryConfig
		ok   bool
	}{
		{"zero-defaults", HistoryConfig{}, true},
		{"explicit-defaults", DefaultHistory(), true},
		{"nan-step", HistoryConfig{StepFrac: math.NaN()}, false},
		{"inf-step", HistoryConfig{StepFrac: math.Inf(1)}, false},
		{"negative-step", HistoryConfig{StepFrac: -0.1}, false},
		{"negative-depth", HistoryConfig{Depth: -1}, false},
		{"huge-depth", HistoryConfig{Depth: 9}, false},
		{"huge-buckets", HistoryConfig{Buckets: 16}, false},
		{"table-too-large", HistoryConfig{Depth: 8, Buckets: 15}, false},
		{"deep-narrow", HistoryConfig{Depth: 6, Buckets: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() accepted, want error")
			}
		})
	}
}

// FuzzHistoryPredictor feeds hostile telemetry — NaN/Inf readings, stuck-at
// sensors, step discontinuities, dead cores — and asserts the two predictor
// invariants: matrices are always finite, and the first Depth observations
// of any core (the guaranteed-cold window) are bit-identical to last-value.
func FuzzHistoryPredictor(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 0, 255, 0, 128, 128, 128})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		plan := modes.Default(1.0, 10)
		base := Predictor{Plan: plan, ExploreSeconds: 500e-6, DerateTransitions: true}
		cfg := DefaultHistory()
		hist := NewHistoryPredictor(base, cfg)
		const n = 3
		cur := modes.Uniform(n, modes.Turbo)

		// Decode one sample per (core, interval) from the fuzz bytes.
		sampleAt := func(i, c int) Sample {
			if len(data) == 0 {
				return Sample{PowerW: 10, Instr: 1e6}
			}
			b := data[(i*n+c)%len(data)]
			switch b % 8 {
			case 0:
				return Sample{PowerW: math.NaN(), Instr: 1e6}
			case 1:
				return Sample{PowerW: 10, Instr: math.Inf(1)}
			case 2:
				return Sample{} // dead/idle core: all zero
			case 3:
				return Sample{PowerW: 10, Instr: 1e6, Done: true}
			case 4:
				// Stuck-at: constant reading regardless of interval.
				return Sample{PowerW: 7.5, Instr: 8e5}
			case 5:
				// Step discontinuity driven by the byte's high bits.
				return Sample{PowerW: 5 + 40*float64(b>>4), Instr: 1e5 + 1e6*float64(b>>4)}
			case 6:
				return Sample{PowerW: -3, Instr: 1e6} // negative power, finite
			default:
				return Sample{PowerW: 8 + float64(b)/32, Instr: 9e5 + 1e4*float64(b)}
			}
		}

		intervals := len(data) + cfg.Depth + 2
		if intervals > 64 {
			intervals = 64
		}
		var got, want Matrices
		samples := make([]Sample, n)
		for i := 0; i < intervals; i++ {
			for c := 0; c < n; c++ {
				samples[c] = sampleAt(i, c)
			}
			hist.MatricesInto(&got, cur, samples)
			if !finiteMatrices(&got) {
				t.Fatalf("interval %d: non-finite matrix from samples %+v", i, samples)
			}
			// Cold-start bit-identity: before any core can have pushed Depth
			// deltas, no lookup has happened, so the only divergence from the
			// base predictor is the documented zeroing of non-finite samples.
			if i < cfg.Depth {
				clean := make([]Sample, n)
				for c := range samples {
					clean[c] = samples[c]
					if !finite(clean[c].PowerW) || !finite(clean[c].Instr) {
						clean[c] = Sample{Done: clean[c].Done}
					}
				}
				base.MatricesInto(&want, cur, clean)
				if !sameMatrices(&got, &want) {
					t.Fatalf("interval %d: cold-start output diverged from last-value", i)
				}
			}
		}
		st := hist.Stats()
		if st.Hits > st.Lookups || st.ColdFallbacks > st.Lookups {
			t.Fatalf("inconsistent stats: %+v", st)
		}
	})
}

// BenchmarkHistoryPredictor measures the steady-state prediction cost per
// decision with a warm table (8 cores); the bench-check gate pins the warm
// path at 0 allocs/op.
func BenchmarkHistoryPredictor(b *testing.B) {
	plan := modes.Default(1.0, 10)
	base := Predictor{Plan: plan, ExploreSeconds: 500e-6, DerateTransitions: true}
	hist := NewHistoryPredictor(base, HistoryConfig{})
	const n = 8
	cur := modes.Uniform(n, modes.Turbo)
	samples := make([]Sample, n)
	fill := func(i int) {
		for c := 0; c < n; c++ {
			phase := 1.0
			if (i+c)%2 == 0 {
				phase = 1.16
			}
			samples[c] = Sample{PowerW: 10 + float64(c), Instr: 1e6 * phase}
		}
	}
	var mx Matrices
	for i := 0; i < 16; i++ { // warm the tables and the scratch buffers
		fill(i)
		hist.MatricesInto(&mx, cur, samples)
	}
	b.Run("warm-history", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill(i)
			hist.MatricesInto(&mx, cur, samples)
		}
	})
	b.Run("base-last-value", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill(i)
			base.MatricesInto(&mx, cur, samples)
		}
	})
}
