// Package core implements the paper's primary contribution: the global CMP
// power manager (§2) and its mode-selection machinery.
//
// At every explore interval the manager receives each core's observed
// (power, committed instructions) for the previous interval, predicts the
// Power and BIPS Matrices for all other modes analytically (§5.5 — cubic
// power scaling, linear BIPS scaling, transition-cost derating), and asks a
// Policy for the next per-core mode vector subject to the chip power budget.
//
// Policies implemented: MaxBIPS, Priority, PullHiPushLo, ChipWideDVFS (the
// paper's four), the Oracle upper bound (§5.6), a Fixed vector used for
// optimistic-static lower bounds (§5.7), plus two extensions the paper
// motivates: GreedyMaxBIPS (near-optimal at 3^N-infeasible scales, §5.5's
// state-space concern) and MinPower (the dual problem named in §1).
package core

import (
	"fmt"
	"sync/atomic"

	"gpm/internal/modes"
)

// Sample is one core's observation for the previous explore interval, as
// reported by the on-core current sensors and performance counters (§2).
type Sample struct {
	// PowerW is the average core power over the interval in watts.
	PowerW float64
	// Instr is the number of instructions committed in the interval.
	Instr float64
	// Done reports that the core's program has completed; the manager parks
	// finished cores in the deepest mode.
	Done bool
}

// Matrices are the §5.5 Power and BIPS Matrices: predicted average power and
// committed instructions for each (core, mode) pair over the next explore
// interval, derived from the observed samples by design-time scaling laws.
type Matrices struct {
	// Power[c][m] is predicted average watts for core c in mode m.
	Power [][]float64
	// Instr[c][m] is predicted committed instructions for core c in mode m,
	// including the transition-overhead derating when m differs from the
	// core's current mode.
	Instr [][]float64

	// flatP/flatI are row-major contiguous backings of Power/Instr when the
	// matrices were laid out by MatricesInto (Power[c][m] == flatP[c*nm+m]).
	// Solver sessions alias them for memo comparison and cluster slicing.
	flatP, flatI []float64

	// Change-detection handshake, maintained by MatricesInto: genID uniquely
	// identifies this backing (a fresh ID on every re-layout), gen is bumped
	// once per call that changed anything, and gens[c] records the generation
	// at which core c's rows last changed. lastS/lastM are the per-core
	// (sample, mode) inputs the current rows were computed from — a row is a
	// pure function of them under a fixed predictor, so an equal input means
	// the row is bit-identical and both the fill and the stamp are skipped.
	gens         []uint64
	gen          uint64
	genID        uint64
	lastS        []Sample
	lastM        modes.Vector
}

// matricesGenID hands out process-unique backing IDs (0 reserved: untracked).
var matricesGenID atomic.Uint64

// Generations exposes the change-detection handshake for the matrices'
// current contents: per-core generation stamps, the overall generation, and
// the backing ID (0 for hand-shaped matrices, which are untracked). Solver
// sessions use it — threaded through solver.Instance by SolverPolicy — to
// answer memo lookups in O(1) and learn the dirty-core set in O(cores).
// The invariant callers rely on: two snapshots with equal genID and gen have
// bit-identical matrices, and gens[c] differing between them implies core
// c's rows may differ.
func (mx Matrices) Generations() (gens []uint64, gen, genID uint64) {
	if len(mx.gens) != len(mx.Power) {
		return nil, 0, 0
	}
	return mx.gens, mx.gen, mx.genID
}

// Flat returns the row-major contiguous backings of the matrices when they
// were laid out by MatricesInto, and ok=false for hand-shaped matrices. The
// slices alias Power/Instr — same floats, one pass.
func (mx *Matrices) Flat() (power, instr []float64, ok bool) {
	if mx.flatP == nil {
		return nil, nil, false
	}
	return mx.flatP, mx.flatI, true
}

// VectorPower sums predicted power across cores for mode vector v.
func (mx Matrices) VectorPower(v modes.Vector) float64 {
	var p float64
	for c, m := range v {
		p += mx.Power[c][m]
	}
	return p
}

// VectorInstr sums predicted instructions across cores for mode vector v.
func (mx Matrices) VectorInstr(v modes.Vector) float64 {
	var t float64
	for c, m := range v {
		t += mx.Instr[c][m]
	}
	return t
}

// Predictor converts observed samples into Matrices.
type Predictor struct {
	Plan modes.Plan
	// PowerScale maps a mode to its total-power scale relative to Turbo. If
	// nil, the pure cubic V²f law of §5.5 is used. A design-time law that
	// folds in leakage (power.Model.ScaleLaw) reduces the residual error.
	PowerScale func(m modes.Mode) float64
	// ExploreSeconds is the decision interval length.
	ExploreSeconds float64
	// DerateTransitions applies the §5.5 scaling factors (e.g. 500/520) to
	// BIPS predictions of mode changes.
	DerateTransitions bool
}

func (p Predictor) scale(m modes.Mode) float64 {
	if p.PowerScale != nil {
		return p.PowerScale(m)
	}
	return p.Plan.PowerScale(m)
}

// Matrices builds the §5.5 matrices given each core's current mode and
// observed sample. Completed cores predict zero power and zero instructions
// in every mode.
func (p Predictor) Matrices(current modes.Vector, samples []Sample) Matrices {
	var mx Matrices
	p.MatricesInto(&mx, current, samples)
	return mx
}

// MatricesInto is the allocation-free form of Matrices: it fills mx in
// place, reusing its rows when they already have the right shape (a fresh
// flat backing array is laid out otherwise). The arithmetic is identical to
// Matrices entry for entry, so the two forms are interchangeable
// bit-for-bit; it exists for per-decision callers (the engine's decision
// supervisor) that must not allocate in steady state.
//
// On reuse, rows whose (sample, current mode) inputs equal the previous
// call's are left untouched — each row is a pure function of those inputs
// under a fixed predictor, so the skipped row is bit-identical to a refill —
// and the generation handshake (Generations) stamps exactly the rows that
// changed. Callers therefore must not (a) mutate filled matrices externally
// or (b) drive the same Matrices value through predictors with different
// parameters; either breaks the purity assumption behind the skip.
func (p Predictor) MatricesInto(mx *Matrices, current modes.Vector, samples []Sample) {
	n := len(current)
	if len(samples) != n {
		panic(fmt.Sprintf("core: %d samples for %d cores", len(samples), n))
	}
	nm := p.Plan.NumModes()
	// Reuse requires both the right shape and rows that alias our own flat
	// layout (hand-shaped matrices are relaid so Flat stays truthful).
	reuse := len(mx.Power) == n && len(mx.Instr) == n &&
		len(mx.flatP) == n*nm && len(mx.flatI) == n*nm &&
		(n == 0 || nm == 0 || (len(mx.Power[0]) == nm && len(mx.Instr[0]) == nm &&
			&mx.Power[0][0] == &mx.flatP[0] && &mx.Instr[0][0] == &mx.flatI[0]))
	if !reuse {
		backing := make([]float64, 2*n*nm)
		mx.flatP = backing[: n*nm : n*nm]
		mx.flatI = backing[n*nm:]
		mx.Power = make([][]float64, n)
		mx.Instr = make([][]float64, n)
		for c := 0; c < n; c++ {
			mx.Power[c] = mx.flatP[c*nm : (c+1)*nm : (c+1)*nm]
			mx.Instr[c] = mx.flatI[c*nm : (c+1)*nm : (c+1)*nm]
		}
	}
	// Generation tracking: a fresh backing gets a fresh ID and every row
	// stamped; a reused one only stamps (and refills) rows whose inputs
	// changed. NaN inputs compare unequal to themselves, so a poisoned sample
	// is conservatively dirty every interval and can never be skipped into.
	fresh := !reuse || len(mx.gens) != n || len(mx.lastS) != n || len(mx.lastM) != n
	if fresh {
		mx.genID = matricesGenID.Add(1)
		mx.gen = 0
		mx.gens = make([]uint64, n)
		mx.lastS = make([]Sample, n)
		mx.lastM = make(modes.Vector, n)
	}
	newGen := mx.gen + 1
	changed := false
	for c := 0; c < n; c++ {
		if !fresh && samples[c] == mx.lastS[c] && current[c] == mx.lastM[c] {
			continue // same inputs ⇒ bit-identical row: skip fill and stamp
		}
		mx.gens[c] = newGen
		mx.lastS[c] = samples[c]
		mx.lastM[c] = current[c]
		changed = true
		if samples[c].Done {
			// Completed cores predict zero in every mode; rows may be reused,
			// so zero them explicitly.
			for m := 0; m < nm; m++ {
				mx.Power[c][m] = 0
				mx.Instr[c][m] = 0
			}
			continue
		}
		cur := current[c]
		// Normalize the observation to Turbo, then project to each mode.
		pTurbo := samples[c].PowerW / p.scale(cur)
		iTurbo := samples[c].Instr / p.Plan.FreqScale(cur)
		for m := 0; m < nm; m++ {
			mode := modes.Mode(m)
			mx.Power[c][m] = pTurbo * p.scale(mode)
			instr := iTurbo * p.Plan.FreqScale(mode)
			if p.DerateTransitions && mode != cur && p.ExploreSeconds > 0 {
				tr := p.Plan.TransitionTime(cur, mode).Seconds()
				instr *= p.ExploreSeconds / (p.ExploreSeconds + tr)
			}
			mx.Instr[c][m] = instr
		}
	}
	if changed {
		mx.gen = newGen
	}
}

// Context is everything a policy may consult for one decision.
type Context struct {
	Plan modes.Plan
	// Current is the mode vector in force during the sampled interval.
	Current modes.Vector
	// BudgetW is the chip power budget for the next interval in watts.
	BudgetW float64
	// Samples are the per-core observations for the last interval.
	Samples []Sample
	// Matrices are the §5.5 predictions derived from Samples.
	Matrices Matrices
	// Lookahead, when non-nil, returns the *actual* average power and
	// instructions core c would produce over the next interval in mode m.
	// Only oracle policies may use it (§5.6).
	Lookahead func(c int, m modes.Mode) (powerW, instr float64)
	// MemBound ranks cores by memory-boundedness in [0,1] (1 = most
	// memory-bound); PullHiPushLo uses it as its preference order (§5.2.2).
	MemBound []float64
	// ExploreSeconds is the decision interval length, for policies that
	// reason about transition overheads directly.
	ExploreSeconds float64
	// Hint is the mode vector actually actuated for the previous interval,
	// when the caller (the engine loop) considers it a valid warm-start seed
	// — nil on the first decision and after discontinuities (supervisor
	// degradation, budget spikes, core death). Session-owning policies pass
	// it to solver.Session.Solve, which re-validates it against the current
	// instance; a hint can therefore accelerate a decision but never change
	// its result.
	Hint modes.Vector
}

// NumCores returns the width of the decision.
func (ctx Context) NumCores() int { return len(ctx.Current) }

// Policy selects the next mode vector. Implementations must be
// deterministic and must not retain ctx.
type Policy interface {
	Name() string
	Decide(ctx Context) modes.Vector
}

// Manager is the global power manager: it owns the current mode vector and
// applies a policy at every explore boundary.
type Manager struct {
	plan      modes.Plan
	policy    Policy
	predictor MatrixPredictor
	current   modes.Vector
	// lastCandidate is the policy's raw output from the most recent Step,
	// before sanitize (observability only; nil until the first decision and
	// while an outer guard bypasses the policy).
	lastCandidate modes.Vector
	// mx is the reusable matrices backing (MatricesInto target), so the
	// prediction step allocates nothing in steady state.
	mx Matrices
	// hint is the warm-start vector for the next Step, staged by
	// StepDecision; consumed (and cleared) by exactly one decision.
	hint modes.Vector
}

// NewManager builds a manager for n cores, starting all cores at Turbo.
func NewManager(plan modes.Plan, policy Policy, pred Predictor, n int) *Manager {
	return NewManagerWith(plan, policy, pred, n)
}

// NewManagerWith builds a manager around any MatrixPredictor — the analytic
// Predictor (NewManager's fixed choice, bit-identical through this path) or
// a stateful upgrade such as the HistoryPredictor.
func NewManagerWith(plan modes.Plan, policy Policy, pred MatrixPredictor, n int) *Manager {
	return &Manager{
		plan:      plan,
		policy:    policy,
		predictor: pred,
		current:   modes.Uniform(n, modes.Turbo),
	}
}

// Current returns the mode vector currently in force.
func (g *Manager) Current() modes.Vector { return g.current.Clone() }

// SetCurrent overrides the mode vector (used when resuming or testing).
func (g *Manager) SetCurrent(v modes.Vector) { g.current = v.Clone() }

// Policy returns the active policy.
func (g *Manager) Policy() Policy { return g.policy }

// Step performs one explore-time decision: build matrices from samples,
// consult the policy, sanitize and adopt the result. lookahead and memBound
// may be nil.
func (g *Manager) Step(budgetW float64, samples []Sample, lookahead func(int, modes.Mode) (float64, float64), memBound []float64) modes.Vector {
	g.predictor.MatricesInto(&g.mx, g.current, samples)
	ctx := Context{
		Plan:           g.plan,
		Current:        g.current.Clone(),
		BudgetW:        budgetW,
		Samples:        samples,
		Matrices:       g.mx,
		Lookahead:      lookahead,
		MemBound:       memBound,
		ExploreSeconds: g.predictor.Explore(),
		Hint:           g.hint,
	}
	g.hint = nil
	next := g.policy.Decide(ctx)
	g.lastCandidate = next
	next = g.sanitize(next, samples)
	g.current = next
	return next.Clone()
}

// LastCandidate returns the policy's raw vector from the most recent Step,
// before sanitization — nil before the first decision or while a guard's
// emergency throttle bypassed the policy. The returned slice is the policy's
// own buffer; callers must not mutate it.
func (g *Manager) LastCandidate() modes.Vector { return g.lastCandidate }

// sanitize clamps a policy result to a legal vector and parks finished cores
// in the deepest mode.
func (g *Manager) sanitize(v modes.Vector, samples []Sample) modes.Vector {
	n := len(g.current)
	out := make(modes.Vector, n)
	deepest := modes.Mode(g.plan.NumModes() - 1)
	for i := 0; i < n; i++ {
		m := modes.Turbo
		if i < len(v) {
			m = v[i]
		}
		if !g.plan.Valid(m) {
			m = deepest
		}
		if i < len(samples) && samples[i].Done {
			m = deepest
		}
		out[i] = m
	}
	return out
}

// EnumerateVectors calls fn for every assignment of numModes modes to n
// cores (numModes^n vectors). The buffer passed to fn is reused; clone it to
// retain. Enumeration stops early if fn returns false.
func EnumerateVectors(numModes, n int, fn func(modes.Vector) bool) {
	v := make(modes.Vector, n)
	for {
		if !fn(v) {
			return
		}
		// Odometer increment.
		i := n - 1
		for i >= 0 {
			v[i]++
			if int(v[i]) < numModes {
				break
			}
			v[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}
