package core

import (
	"math"
	"testing"

	"gpm/internal/modes"
	"gpm/internal/solver"
)

// tiedMatrices builds matrices where every core has *identical* rows, so
// every ΔBIPS/ΔPower upgrade ratio ties exactly.
func tiedMatrices(n int, p modes.Plan) Matrices {
	mx := Matrices{Power: make([][]float64, n), Instr: make([][]float64, n)}
	for c := 0; c < n; c++ {
		mx.Power[c] = make([]float64, p.NumModes())
		mx.Instr[c] = make([]float64, p.NumModes())
		for m := 0; m < p.NumModes(); m++ {
			mx.Power[c][m] = 20 * p.PowerScale(modes.Mode(m))
			mx.Instr[c][m] = 100_000 * p.FreqScale(modes.Mode(m))
		}
	}
	return mx
}

// TestGreedyTieBreaksToLowestCore is the regression lock for GreedyMaxBIPS's
// documented rule: equal ΔBIPS/ΔW ratios resolve to the lowest core index.
// With identical cores and room for exactly k upgrades, cores 0..k-1 must be
// the ones upgraded, in order.
func TestGreedyTieBreaksToLowestCore(t *testing.T) {
	p := plan()
	n := 4
	mx := tiedMatrices(n, p)
	deepest := modes.Mode(p.NumModes() - 1)
	// Budget: all cores at Eff2 plus exactly one full Eff2→Eff1 step of
	// headroom (plus dust), so one single-step upgrade fits.
	floor := float64(n) * mx.Power[0][deepest]
	step := mx.Power[0][deepest-1] - mx.Power[0][deepest]
	ctx := Context{
		Plan:     p,
		Current:  modes.Uniform(n, deepest),
		BudgetW:  floor + step + 1e-9,
		Matrices: mx,
	}
	got := GreedyMaxBIPS{}.Decide(ctx)
	want := modes.Uniform(n, deepest)
	want[0] = deepest - 1
	if !got.Equal(want) {
		t.Fatalf("tied upgrade went to %v, want lowest-core %v", got, want)
	}

	// Two steps of headroom: cores 0 then 1.
	ctx.BudgetW = floor + 2*step + 1e-9
	got = GreedyMaxBIPS{}.Decide(ctx)
	want[1] = deepest - 1
	if !got.Equal(want) {
		t.Fatalf("two tied upgrades went to %v, want %v", got, want)
	}

	// The solver package's greedy kernel must agree on the same ties.
	sv, _ := solver.Greedy{}.Solve(solver.Instance{
		Plan: p, BudgetW: ctx.BudgetW, Power: mx.Power, Instr: mx.Instr,
	})
	if !sv.Equal(got) {
		t.Fatalf("solver greedy %v disagrees with GreedyMaxBIPS %v on tied matrices", sv, got)
	}
}

// TestSolverPoliciesMatchExhaustiveKernel checks the wired policies: the
// exact solver-backed policies must reproduce MaxBIPS decisions on contexts
// small enough for the kernel.
func TestSolverPoliciesMatchExhaustiveKernel(t *testing.T) {
	p := plan()
	pred := predictor()
	powers := []float64{19, 23, 17, 25, 21, 18}
	instrs := []float64{80_000, 120_000, 60_000, 140_000, 90_000, 75_000}
	cur := modes.Uniform(len(powers), modes.Turbo)
	mx := pred.Matrices(cur, samples(powers, instrs))
	var turbo float64
	for c := range powers {
		turbo += mx.Power[c][0]
	}
	for _, frac := range []float64{0.62, 0.75, 0.9} {
		ctx := Context{Plan: p, Current: cur, BudgetW: frac * turbo, Matrices: mx}
		want := MaxBIPS{}.Decide(ctx)
		for _, name := range []string{"maxbips-bb", "maxbips-sharded"} {
			pol, err := Registry(name)
			if err != nil {
				t.Fatal(err)
			}
			got := pol.Decide(ctx)
			if !got.Equal(want) {
				t.Fatalf("%s at %.0f%%: %v, want kernel's %v", name, frac*100, got, want)
			}
		}
		// DP and hier are approximate but must stay feasible and close.
		wantT := mx.VectorInstr(want)
		for _, name := range []string{"maxbips-dp", "maxbips-hier"} {
			pol, err := Registry(name)
			if err != nil {
				t.Fatal(err)
			}
			got := pol.Decide(ctx)
			if pw := mx.VectorPower(got); pw > ctx.BudgetW+1e-9 {
				t.Fatalf("%s at %.0f%%: over budget", name, frac*100)
			}
			if gotT := mx.VectorInstr(got); gotT < 0.99*wantT {
				t.Fatalf("%s at %.0f%%: quality %.4f below 99%%", name, frac*100, gotT/wantT)
			}
		}
	}
}

// FuzzEnumerateVectors pins the enumeration contract: modes^cores callbacks,
// lexicographic order, and early-stop.
func FuzzEnumerateVectors(f *testing.F) {
	f.Add(uint8(3), uint8(4))
	f.Add(uint8(2), uint8(10))
	f.Add(uint8(5), uint8(1))
	f.Add(uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, numModes, n uint8) {
		m := int(numModes%6) + 1 // 1..6 modes
		c := int(n % 8)          // 0..7 cores
		want := int64(math.Pow(float64(m), float64(c)))
		var count int64
		prev := modes.Vector(nil)
		EnumerateVectors(m, c, func(v modes.Vector) bool {
			count++
			if len(v) != c {
				t.Fatalf("vector width %d, want %d", len(v), c)
			}
			for _, mo := range v {
				if int(mo) < 0 || int(mo) >= m {
					t.Fatalf("mode %d out of range [0,%d)", mo, m)
				}
			}
			if prev != nil && !lexLess(prev, v) {
				t.Fatalf("enumeration not strictly lexicographic: %v then %v", prev, v)
			}
			prev = v.Clone()
			return true
		})
		if count != want {
			t.Fatalf("enumerated %d vectors, want %d^%d = %d", count, m, c, want)
		}
		// Early-stop: returning false must halt immediately.
		var stopped int64
		EnumerateVectors(m, c, func(modes.Vector) bool {
			stopped++
			return stopped < 3
		})
		if limit := min(want, 3); stopped != limit {
			t.Fatalf("early stop visited %d vectors, want %d", stopped, limit)
		}
	})
}

func lexLess(a, b modes.Vector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BenchmarkSelectMaxThroughput measures the exhaustive kernel's per-decision
// cost at 8 cores. Run with -benchmem: the copy-in-place scratch buffer
// keeps it at a single vector allocation per decision (it used to clone
// every improving vector).
func BenchmarkSelectMaxThroughput(b *testing.B) {
	p := plan()
	n := 8
	mx := Matrices{Power: make([][]float64, n), Instr: make([][]float64, n)}
	for c := 0; c < n; c++ {
		mx.Power[c] = make([]float64, p.NumModes())
		mx.Instr[c] = make([]float64, p.NumModes())
		for m := 0; m < p.NumModes(); m++ {
			mx.Power[c][m] = (18 + float64(c%5)) * p.PowerScale(modes.Mode(m))
			mx.Instr[c][m] = (50_000 + float64(c)*3000) * p.FreqScale(modes.Mode(m))
		}
	}
	budget := 0.8 * 8 * 22.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selectMaxThroughput(p, n, budget, mx)
	}
}
