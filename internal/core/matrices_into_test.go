package core

import (
	"math"
	"testing"

	"gpm/internal/modes"
)

// TestMatricesIntoBitIdentical pins that the allocation-free MatricesInto
// path produces bit-identical matrices to the allocating Matrices, including
// across reuse with changing shapes and Done cores (reused rows must be
// re-zeroed, not inherited).
func TestMatricesIntoBitIdentical(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo, modes.Eff1, modes.Eff2, modes.Turbo}
	s := samples([]float64{20, 15, 9, 17}, []float64{1000, 850, 600, 910})
	s[2].Done = true

	var mx Matrices
	pred.MatricesInto(&mx, cur, s)
	want := pred.Matrices(cur, s)
	for c := range want.Power {
		for m := range want.Power[c] {
			if mx.Power[c][m] != want.Power[c][m] || mx.Instr[c][m] != want.Instr[c][m] {
				t.Fatalf("core %d mode %d: into (%v,%v) != alloc (%v,%v)",
					c, m, mx.Power[c][m], mx.Instr[c][m], want.Power[c][m], want.Instr[c][m])
			}
		}
	}

	// Reuse with a previously-Done core now live, and vice versa: no stale
	// zeros, no stale values.
	s[2].Done = false
	s[0].Done = true
	pred.MatricesInto(&mx, cur, s)
	want = pred.Matrices(cur, s)
	for c := range want.Power {
		for m := range want.Power[c] {
			if mx.Power[c][m] != want.Power[c][m] {
				t.Fatalf("reuse: core %d mode %d: %v != %v", c, m, mx.Power[c][m], want.Power[c][m])
			}
		}
	}
	if mx.Power[0][0] != 0 {
		t.Fatal("Done core's row not zeroed on reuse")
	}

	// Shape change reallocates cleanly.
	pred.MatricesInto(&mx, cur[:2], s[:2])
	if len(mx.Power) != 2 || len(mx.Instr) != 2 {
		t.Fatalf("shape change: got %d/%d rows", len(mx.Power), len(mx.Instr))
	}
}

// TestMatricesIntoNoAllocSteadyState pins the reuse path allocation-free.
func TestMatricesIntoNoAllocSteadyState(t *testing.T) {
	pred := predictor()
	cur := modes.Vector{modes.Turbo, modes.Eff1}
	s := samples([]float64{20, 15}, []float64{1000, 850})
	var mx Matrices
	pred.MatricesInto(&mx, cur, s)
	allocs := testing.AllocsPerRun(100, func() {
		pred.MatricesInto(&mx, cur, s)
	})
	if allocs != 0 {
		t.Fatalf("MatricesInto steady state allocates %.1f/op, want 0", allocs)
	}
}

// TestGuardConfigValidate is the table-driven typed-error check for the
// guard's user-facing numeric knobs.
func TestGuardConfigValidate(t *testing.T) {
	ok := GuardConfig{}
	if err := ok.Validate(); err != nil {
		t.Fatalf("zero config (all defaults) rejected: %v", err)
	}
	full := DefaultGuard()
	if err := full.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		mut  func(*GuardConfig)
	}{
		{"OvershootFrac NaN", func(g *GuardConfig) { g.OvershootFrac = nan }},
		{"OvershootFrac Inf", func(g *GuardConfig) { g.OvershootFrac = inf }},
		{"RecoverFrac NaN", func(g *GuardConfig) { g.RecoverFrac = nan }},
		{"EWMAAlpha NaN", func(g *GuardConfig) { g.EWMAAlpha = nan }},
		{"ClampFactor Inf", func(g *GuardConfig) { g.ClampFactor = inf }},
		{"MaxCorePowerW NaN", func(g *GuardConfig) { g.MaxCorePowerW = nan }},
		{"RescaleMismatchFrac Inf", func(g *GuardConfig) { g.RescaleMismatchFrac = inf }},
	}
	for _, tc := range cases {
		g := DefaultGuard()
		tc.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
